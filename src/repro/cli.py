"""Command-line interface.

Eleven subcommands mirroring the library's main uses::

    python -m repro demo                 # quick genuine-vs-attacker demo
    python -m repro verify --role attack # simulate + verify one session
    python -m repro simulate --trace t.jsonl  # instrumented session batch
    python -m repro trace t.jsonl        # per-stage latency percentiles
    python -m repro figures --only fig11 # regenerate paper figures
    python -m repro faults --jobs 2      # fault-severity robustness matrix
    python -m repro serve --sessions 8   # multi-tenant verification service
    python -m repro loadtest --json b.json  # deterministic open-loop load test
    python -m repro protocol             # challenge-binding protocol demo
    python -m repro lint --format json   # reprolint static analysis
    python -m repro info                 # configuration + paper constants

The CLI exists so the reproduction can be driven without writing Python
— handy for spot checks and for embedding in shell pipelines (exit code
of ``verify`` reflects the verdict).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from collections.abc import Sequence

from .api import (
    PAPER_CONFIG,
    ChatVerifier,
    ExecutionEngine,
    simulate_adaptive_attack_session,
    simulate_attack_session,
    simulate_genuine_session,
    simulate_replay_attack_session,
)

__all__ = ["main", "build_parser"]


def _enrolled_verifier(enroll_sessions: int, seed: int) -> ChatVerifier:
    verifier = ChatVerifier()
    verifier.enroll(
        [
            simulate_genuine_session(duration_s=15.0, seed=seed + i)
            for i in range(enroll_sessions)
        ]
    )
    return verifier


def _simulate(
    role: str,
    seed: int,
    duration_s: float,
    delay_s: float,
    env=None,
    instrumentation=None,
):
    if role == "genuine":
        return simulate_genuine_session(
            duration_s=duration_s, seed=seed, env=env, instrumentation=instrumentation
        )
    if role == "attack":
        return simulate_attack_session(
            duration_s=duration_s, seed=seed, env=env, instrumentation=instrumentation
        )
    if role == "replay":
        return simulate_replay_attack_session(
            duration_s=duration_s, seed=seed, env=env, instrumentation=instrumentation
        )
    if role == "adaptive":
        return simulate_adaptive_attack_session(
            processing_delay_s=delay_s,
            duration_s=duration_s,
            seed=seed,
            env=env,
            instrumentation=instrumentation,
        )
    raise ValueError(f"unknown role {role!r}")


def _simulate_session_task(payload: tuple) -> dict:
    """One instrumented session: simulate, verify, ship metrics home.

    Module-level and self-contained (picklable).  The worker builds its
    *own* enabled :class:`~repro.obs.instrument.Instrumentation` — an
    enabled handle never crosses a process boundary — and returns its
    deterministic :class:`~repro.obs.metrics.MetricsSnapshot` plus the
    buffered span records for the parent to merge in submission order
    (what keeps ``--jobs N`` output bit-identical to ``--jobs 1``).
    """
    bank, config, env, role, delay_s, duration_s, seed = payload
    from .core.pipeline import ChatVerifier
    from .obs import Instrumentation

    instr = Instrumentation.enabled()
    with instr.span("session", stage="simulate", role=role, seed=seed):
        record = _simulate(
            role, seed, duration_s, delay_s, env=env, instrumentation=instr
        )
        verifier = ChatVerifier(config, instrumentation=instr)
        verifier.detector.fit(bank)
        report = verifier.verify_session(record)
    return {
        "role": role,
        "seed": seed,
        "verdict": "ATTACKER" if report.is_attacker else "live",
        "clips": len(report.attempts),
        "snapshot": instr.snapshot(),
        "spans": instr.drain_spans(),
    }


def cmd_demo(args: argparse.Namespace) -> int:
    """Enroll, then verify one genuine and one attack session."""
    print("enrolling verifier on genuine sessions ...")
    verifier = _enrolled_verifier(args.enroll, seed=args.seed)
    for role in ("genuine", "attack"):
        record = _simulate(role, args.seed + 100, 15.0, 1.0)
        verdict = verifier.verify_session(record)
        attempt = verdict.attempts[0]
        z = attempt.features
        label = "ATTACKER" if verdict.is_attacker else "live person"
        print(
            f"{role:>8s}: z=({z.z1:.2f}, {z.z2:.2f}, {z.z3:.2f}, {z.z4:.2f}) "
            f"LOF={min(attempt.lof_score, 999.0):6.2f} -> {label}"
        )
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Simulate one session of the given role and verify it.

    Exit code 0 = accepted as live, 1 = flagged as attacker (so the
    shell can branch on the verdict).
    """
    verifier = _enrolled_verifier(args.enroll, seed=args.seed)
    record = _simulate(args.role, args.seed + 1000, args.duration, args.delay)
    verdict = verifier.verify_session(record)
    for i, attempt in enumerate(verdict.attempts):
        z = attempt.features
        print(
            f"clip {i}: z=({z.z1:.2f}, {z.z2:.2f}, {z.z3:.2f}, {z.z4:.2f}) "
            f"LOF={min(attempt.lof_score, 999.0):6.2f} "
            f"{'reject' if attempt.rejected else 'accept'}"
        )
    print(
        f"verdict: {'ATTACKER' if verdict.is_attacker else 'live'} "
        f"({verdict.verdict.reject_votes}/{verdict.verdict.total_votes} reject votes)"
    )
    return 1 if verdict.is_attacker else 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run an instrumented batch of verified chat sessions.

    The observability showcase: every session runs under a full
    :class:`~repro.obs.instrument.Instrumentation` handle, spans cover
    the whole pipeline (simulate -> luminance -> preprocessing ->
    matching -> verdict), ``--trace`` streams them to JSONL, and
    ``--metrics`` prints the merged deterministic registry — bit-identical
    at any ``--jobs`` count.
    """
    import contextlib
    import dataclasses as dc

    from .core.config import DetectorConfig
    from .engine import task_rng
    from .experiments.faultmatrix import _enrollment_bank
    from .experiments.profiles import DEFAULT_ENVIRONMENT
    from .experiments.simulate import default_user
    from .obs import (
        Instrumentation,
        JsonlTraceSink,
        render_json,
        render_prometheus,
    )

    # Small frames keep the batch interactive; detection quality is
    # unaffected (the ROI probe only needs the nasal bridge resolved).
    env = dc.replace(
        DEFAULT_ENVIRONMENT,
        frame_size=(args.frame, args.frame),
        verifier_frame_size=(args.verifier_frame, args.verifier_frame),
    )
    config = DetectorConfig()
    user = default_user()

    with contextlib.ExitStack() as stack:
        sink = None
        if args.trace:
            sink = stack.enter_context(JsonlTraceSink(args.trace))
        instr = Instrumentation.enabled(sink=sink)
        engine = stack.enter_context(
            ExecutionEngine(jobs=args.jobs, instrumentation=instr)
        )
        with instr.span("simulate.batch", stage="simulate", sessions=args.sessions):
            with instr.span("simulate.enroll", stage="simulate"):
                bank = _enrollment_bank(
                    config, env, user, args.enroll, args.seed, engine
                )
            payloads = [
                (
                    bank,
                    config,
                    env,
                    args.role,
                    args.delay,
                    args.duration,
                    int(task_rng(args.seed, 500, i).integers(0, 2**31 - 1)),
                )
                for i in range(args.sessions)
            ]
            rows = engine.map(_simulate_session_task, payloads, stage="sessions")
        # Merge worker results in submission order: metric merge is
        # associative, so this is the jobs-invariant reduction.
        for row in rows:
            instr.registry.merge_snapshot(row["snapshot"])
            instr.tracer.adopt(row["spans"])
        for row in rows:
            print(
                f"session seed={row['seed']:>10d} role={row['role']:>8s} "
                f"clips={row['clips']} -> {row['verdict']}"
            )
        if args.trace:
            print(f"trace written to {args.trace}")
        if args.metrics == "json":
            print(render_json(instr.snapshot()))
        elif args.metrics == "prom":
            print(render_prometheus(instr.snapshot()), end="")
        if args.perf:
            print()
            print(engine.perf_report())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Aggregate a JSONL trace into per-stage latency percentiles."""
    from .obs.trace_cli import run_trace

    return run_trace(args)


def cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate paper figures (thin wrapper over experiments.figures)."""
    from .experiments.figures import generate_all

    with ExecutionEngine(jobs=args.jobs) as engine:
        generate_all(args.out, only=args.only or None, engine=engine)
        if args.perf:
            print()
            print(engine.perf_report())
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Sweep the fault-severity grid through the gated streaming verifier."""
    import dataclasses as dc

    from .experiments.faultmatrix import run_fault_matrix
    from .experiments.profiles import DEFAULT_ENVIRONMENT

    # Small frames keep the sweep interactive; detection quality is
    # unaffected (the ROI probe only needs the nasal bridge resolved).
    env = dc.replace(
        DEFAULT_ENVIRONMENT,
        frame_size=(args.frame, args.frame),
        verifier_frame_size=(args.verifier_frame, args.verifier_frame),
    )
    with ExecutionEngine(jobs=args.jobs) as engine:
        result = run_fault_matrix(
            severities=tuple(args.severities),
            roles=tuple(args.roles),
            sessions_per_cell=args.sessions,
            duration_s=args.duration,
            enroll_sessions=args.enroll,
            env=env,
            seed=args.seed,
            engine=engine,
        )
        print(result)
        if args.perf:
            print()
            print(engine.perf_report())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a demo workload through the multi-tenant verification service."""
    from .service.cli import run_serve

    return run_serve(args)


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Open-loop load test of the service (deterministic virtual time)."""
    from .service.cli import run_loadtest

    return run_loadtest(args)


def cmd_protocol(args: argparse.Namespace) -> int:
    """Demo of the cryptographic challenge-binding protocol."""
    from .protocol.cli import run_protocol

    return run_protocol(args)


def cmd_lint(args: argparse.Namespace) -> int:
    """Static determinism/contract analysis (reprolint) over the tree."""
    from .analysis.cli import run_lint

    return run_lint(args)


def cmd_info(args: argparse.Namespace) -> int:
    """Print the paper configuration and the library version."""
    del args
    from . import __version__

    print(f"repro {__version__} - reproduction of Shang & Wu, ICDCS 2020")
    print("paper configuration (DetectorConfig defaults):")
    for field in dataclasses.fields(PAPER_CONFIG):
        print(f"  {field.name:24s} = {getattr(PAPER_CONFIG, field.name)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Liveness defense for video chat (ICDCS 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help=cmd_demo.__doc__)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--enroll", type=int, default=12, help="enrollment sessions")
    demo.set_defaults(func=cmd_demo)

    verify = sub.add_parser("verify", help="simulate and verify one session")
    verify.add_argument(
        "--role",
        choices=("genuine", "attack", "replay", "adaptive"),
        default="genuine",
    )
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--duration", type=float, default=15.0)
    verify.add_argument("--enroll", type=int, default=12)
    verify.add_argument(
        "--delay", type=float, default=1.0, help="adaptive forger's processing delay"
    )
    verify.set_defaults(func=cmd_verify)

    simulate = sub.add_parser(
        "simulate",
        help="instrumented batch of verified sessions (spans + metrics)",
    )
    simulate.add_argument(
        "--role",
        choices=("genuine", "attack", "replay", "adaptive"),
        default="genuine",
    )
    simulate.add_argument("--sessions", type=int, default=2, help="sessions to run")
    simulate.add_argument(
        "--duration", type=float, default=15.0, help="seconds of chat per session"
    )
    simulate.add_argument("--enroll", type=int, default=8, help="enrollment sessions")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--delay", type=float, default=1.0, help="adaptive forger's processing delay"
    )
    simulate.add_argument(
        "--frame", type=int, default=72, help="prover frame edge (pixels)"
    )
    simulate.add_argument(
        "--verifier-frame", type=int, default=48, help="verifier frame edge (pixels)"
    )
    simulate.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the execution engine (1 = serial; "
        "results and merged metrics are identical at any job count)",
    )
    simulate.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write every pipeline span to this JSONL file (repro-trace-v1)",
    )
    simulate.add_argument(
        "--metrics",
        choices=("json", "prom"),
        default=None,
        help="print the merged metrics registry (deterministic across --jobs)",
    )
    simulate.add_argument(
        "--perf",
        action="store_true",
        help="print the engine's PerfReport after the batch",
    )
    simulate.set_defaults(func=cmd_simulate)

    trace = sub.add_parser(
        "trace",
        help="per-stage latency percentiles from a --trace JSONL file",
    )
    from .obs.trace_cli import add_trace_arguments

    add_trace_arguments(trace)
    trace.set_defaults(func=cmd_trace)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("--out", default="results")
    figures.add_argument("--only", nargs="*")
    figures.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the execution engine (1 = serial; "
        "results are identical at any job count)",
    )
    figures.add_argument(
        "--perf",
        action="store_true",
        help="print the engine's PerfReport (per-stage wall time, cache "
        "hits/misses, tasks/sec) after the figures",
    )
    figures.set_defaults(func=cmd_figures)

    faults = sub.add_parser(
        "faults", help="fault-injection robustness matrix (severity x role)"
    )
    faults.add_argument(
        "--severities",
        type=float,
        nargs="*",
        default=(0.0, 0.25, 0.5, 1.0),
        help="fault-severity multipliers applied to the default profile",
    )
    faults.add_argument(
        "--roles", nargs="*", default=("genuine", "attack"), help="cell roles"
    )
    faults.add_argument("--sessions", type=int, default=2, help="sessions per cell")
    faults.add_argument(
        "--duration", type=float, default=30.0, help="seconds of chat per session"
    )
    faults.add_argument("--enroll", type=int, default=8, help="enrollment sessions")
    faults.add_argument("--seed", type=int, default=97)
    faults.add_argument(
        "--frame", type=int, default=72, help="prover frame edge (pixels)"
    )
    faults.add_argument(
        "--verifier-frame", type=int, default=48, help="verifier frame edge (pixels)"
    )
    faults.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the execution engine (1 = serial; "
        "results are identical at any job count)",
    )
    faults.add_argument(
        "--perf",
        action="store_true",
        help="print the engine's PerfReport (incl. quality-gate counters)",
    )
    faults.set_defaults(func=cmd_faults)

    serve = sub.add_parser(
        "serve",
        help="run a demo workload through the multi-tenant verification "
        "service (virtual time by default; --realtime for the wall clock)",
    )
    from .service.cli import add_loadtest_arguments, add_serve_arguments

    add_serve_arguments(serve)
    serve.set_defaults(func=cmd_serve)

    loadtest = sub.add_parser(
        "loadtest",
        help="deterministic open-loop load test: hundreds of concurrent "
        "sessions under virtual time, with a serial byte-identity check",
    )
    add_loadtest_arguments(loadtest)
    loadtest.set_defaults(func=cmd_loadtest)

    protocol = sub.add_parser(
        "protocol",
        help="challenge-binding protocol demo: nonce handshake, derived "
        "schedules, and binding verdicts (--matrix for the full-stack sweep)",
    )
    from .protocol.cli import add_protocol_arguments

    add_protocol_arguments(protocol)
    protocol.set_defaults(func=cmd_protocol)

    lint = sub.add_parser(
        "lint",
        help="reprolint: AST + whole-program determinism & contract analysis "
        "(per-file R001-R006, call-graph R007-R011; see --list-rules)",
    )
    from .analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    info = sub.add_parser("info", help=cmd_info.__doc__)
    info.set_defaults(func=cmd_info)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
