#!/usr/bin/env python3
"""Quickstart: enroll the defense, verify a genuine user, catch an attacker.

The shortest end-to-end tour of the public API:

1. Simulate a few genuine video-chat sessions and enroll the verifier
   (the paper's training phase: a small bank of *legitimate* feature
   vectors — no attacker data, no per-user enrollment).
2. Verify a fresh genuine session: accepted.
3. Verify a face-reenactment attack session: rejected.

Run:  python examples/quickstart.py
"""

from repro import ChatVerifier, simulate_attack_session, simulate_genuine_session


def main() -> None:
    print("=== Protecting video chat against face reenactment: quickstart ===\n")

    # --- Training phase -------------------------------------------------
    print("enrolling on 8 genuine chat sessions (15 s each)...")
    verifier = ChatVerifier()
    training_sessions = [
        simulate_genuine_session(duration_s=15.0, seed=seed) for seed in range(8)
    ]
    verifier.enroll(training_sessions)
    print(f"  trained LOF bank: {verifier.detector.training_size} feature vectors\n")

    # --- A legitimate chat partner --------------------------------------
    print("verifying a genuine user...")
    genuine = simulate_genuine_session(duration_s=15.0, seed=101)
    verdict = verifier.verify_session(genuine)
    attempt = verdict.attempts[0]
    print(f"  features : z1={attempt.features.z1:.2f} z2={attempt.features.z2:.2f} "
          f"z3={attempt.features.z3:.2f} z4={attempt.features.z4:.2f}")
    print(f"  LOF score: {attempt.lof_score:.2f} (threshold {attempt.threshold})")
    print(f"  verdict  : {'ATTACKER' if verdict.is_attacker else 'live person'}\n")
    assert not verdict.is_attacker

    # --- A face-reenactment attacker ------------------------------------
    print("verifying a face-reenactment attacker (ICFace-style)...")
    attack = simulate_attack_session(duration_s=15.0, seed=202)
    verdict = verifier.verify_session(attack)
    attempt = verdict.attempts[0]
    print(f"  features : z1={attempt.features.z1:.2f} z2={attempt.features.z2:.2f} "
          f"z3={attempt.features.z3:.2f} z4={attempt.features.z4:.2f}")
    score = attempt.lof_score
    shown = f"{score:.2f}" if score < 1e6 else "inf"
    print(f"  LOF score: {shown} (threshold {attempt.threshold})")
    print(f"  verdict  : {'ATTACKER' if verdict.is_attacker else 'live person'}\n")
    assert verdict.is_attacker

    print("done: the fake video's luminance never followed the screen light.")


if __name__ == "__main__":
    main()
