#!/usr/bin/env python3
"""Attack gallery: every attacker in the threat model vs the defense.

Runs four adversaries against one enrolled verifier and prints the
per-clip evidence side by side:

* **replay** — the victim's own footage replayed (the classic attack);
* **reenactment** — ICFace-style expression transfer in real time (the
  paper's main adversary);
* **adaptive, instant** — a hypothetical attacker that forges the
  screen-light reflection with zero processing delay (the paper concedes
  this one passes — the defense raises the bar, it is not unbeatable);
* **adaptive, slow** — the same forger with a realistic 2-second
  relighting delay (caught, per Fig. 17).

Run:  python examples/attack_gallery.py
"""

from repro import ChatVerifier, simulate_genuine_session
from repro.experiments.simulate import (
    simulate_adaptive_attack_session,
    simulate_attack_session,
    simulate_replay_attack_session,
)

SESSIONS_PER_ATTACK = 3


def main() -> None:
    print("=== Attack gallery ===\n")
    print("enrolling the verifier on 10 genuine sessions...\n")
    verifier = ChatVerifier()
    verifier.enroll(
        [simulate_genuine_session(duration_s=15.0, seed=seed) for seed in range(10)]
    )

    scenarios = [
        (
            "genuine user (control)",
            lambda seed: simulate_genuine_session(duration_s=15.0, seed=seed),
        ),
        (
            "replay attack",
            lambda seed: simulate_replay_attack_session(duration_s=15.0, seed=seed),
        ),
        (
            "face reenactment",
            lambda seed: simulate_attack_session(duration_s=15.0, seed=seed),
        ),
        (
            "adaptive forger, 0.0 s delay",
            lambda seed: simulate_adaptive_attack_session(
                processing_delay_s=0.0, duration_s=15.0, seed=seed
            ),
        ),
        (
            "adaptive forger, 2.0 s delay",
            lambda seed: simulate_adaptive_attack_session(
                processing_delay_s=2.0, duration_s=15.0, seed=seed
            ),
        ),
    ]

    header = f"{'scenario':>30s} {'z1':>6s} {'z2':>6s} {'z3':>7s} {'z4':>6s} {'LOF':>8s}  verdict"
    print(header)
    print("-" * len(header))
    for scenario_index, (name, make_session) in enumerate(scenarios):
        for i in range(SESSIONS_PER_ATTACK):
            record = make_session(7000 + 50 * scenario_index + i)
            verdict = verifier.verify_session(record)
            attempt = verdict.attempts[0]
            z = attempt.features
            label = "ATTACKER" if verdict.is_attacker else "live"
            score = attempt.lof_score
            shown = f"{score:8.2f}" if score < 1e4 else "     inf"
            print(
                f"{name:>30s} {z.z1:6.2f} {z.z2:6.2f} {z.z3:7.2f} {z.z4:6.2f} "
                f"{shown}  {label}"
            )
        print()

    print("takeaways:")
    print(" * replay and reenactment never track the live challenge -> rejected;")
    print(" * an instant perfect reflection forger passes (the known limit);")
    print(" * add a realistic relighting delay and the forger is caught again.")


if __name__ == "__main__":
    main()
