#!/usr/bin/env python3
"""Walkthrough of the full Fig. 4 loop, component by component.

Builds the whole testbed explicitly — Alice's scene/camera/metering, the
network links, Bob's screen/face/camera — runs a 30-second chat, then
walks the detector pipeline stage by stage and prints what each stage
sees: luminance signals, filter outputs, significant changes, matches,
features, LOF score.

A good starting point for understanding how the system is wired, and for
swapping any component (a different screen, a lossier network, a darker
room) to see its effect on the evidence.

Run:  python examples/video_chat_walkthrough.py
"""

import numpy as np

from repro.chat.session import VideoChatSession
from repro.core.config import DetectorConfig
from repro.core.detector import LivenessDetector
from repro.core.features import extract_features
from repro.core.luminance import received_luminance_signal, transmitted_luminance_signal
from repro.experiments.profiles import Environment
from repro.experiments.simulate import (
    build_genuine_prover,
    build_links,
    build_verifier,
    default_user,
    simulate_genuine_session,
)


def main() -> None:
    config = DetectorConfig()
    env = Environment()  # the paper's testbed: 27" LED at 85 %, 10 Hz

    print("=== Step 0: build the testbed ===")
    verifier_endpoint = build_verifier(env, seed=11)
    prover_endpoint = build_genuine_prover(default_user(), env, seed=12)
    uplink, downlink = build_links(env, seed=13)
    print(f"  screen        : {env.screen.diagonal_in}\" {env.screen.technology.upper()}"
          f" at {env.screen.brightness:.0%} brightness")
    print(f"  viewing dist. : {env.viewing_distance_m} m")
    print(f"  network       : {uplink.channel.base_delay_s * 1000:.0f} ms one-way,"
          f" {uplink.channel.loss_rate:.1%} loss,"
          f" {uplink.jitter_buffer.playout_delay_s * 1000:.0f} ms playout buffer")

    print("\n=== Steps 1-4: run the chat (30 s) ===")
    session = VideoChatSession(
        verifier=verifier_endpoint,
        prover=prover_endpoint,
        uplink=uplink,
        downlink=downlink,
        fps=env.fps,
    )
    record = session.run(duration_s=30.0)
    print(f"  transmitted frames : {len(record.transmitted)}")
    print(f"  received frames    : {len(record.received)}"
          f" ({record.stats['frozen_ticks']} loss-concealed)")
    print(f"  round-trip delay   : {record.stats['round_trip_delay_s'] * 1000:.0f} ms")

    print("\n=== Step 5a: luminance extraction (Sec. IV) ===")
    t_lum = transmitted_luminance_signal(record.transmitted)
    received = received_luminance_signal(record.received)
    r_lum = received.luminance
    print(f"  transmitted luminance: {t_lum.min():.0f} .. {t_lum.max():.0f}"
          f" (mean {t_lum.mean():.0f})")
    print(f"  nasal-ROI luminance  : {r_lum.min():.0f} .. {r_lum.max():.0f}"
          f" (face detected in {received.detection_rate:.0%} of frames)")

    print("\n=== Step 5b: preprocessing + features (Sec. V-VI) ===")
    # Use the first 15-second clip, like a real detection attempt.
    n = config.samples_per_clip
    fx = extract_features(t_lum[:n], r_lum[:n], config)
    print(f"  screen changes at : {np.round(fx.transmitted.peak_times, 1)} s")
    print(f"  face changes at   : {np.round(fx.received.peak_times, 1)} s")
    print(f"  matched pairs     : {len(fx.matches)}"
          f" (estimated delay {fx.delay_s:.2f} s)")
    z = fx.features
    print(f"  z1 (matched in T) : {z.z1:.3f}")
    print(f"  z2 (matched in R) : {z.z2:.3f}")
    print(f"  z3 (min Pearson)  : {z.z3:.3f}")
    print(f"  z4 (max DTW / 30) : {z.z4:.3f}")

    print("\n=== Step 5c: LOF classification (Sec. VII) ===")
    detector = LivenessDetector(config)
    detector.fit_from_clips(
        _training_clips(config, count=8)
    )
    result = detector.verify_features(z)
    print(f"  LOF score : {result.lof_score:.2f} (threshold {result.threshold})")
    print(f"  decision  : {'REJECT (attacker)' if result.rejected else 'ACCEPT (live)'}")


def _training_clips(config: DetectorConfig, count: int):
    """Legitimate (transmitted, received) luminance pairs for the bank."""
    clips = []
    for seed in range(count):
        record = simulate_genuine_session(duration_s=15.0, seed=500 + seed)
        t = transmitted_luminance_signal(record.transmitted)
        r = received_luminance_signal(record.received).luminance
        n = config.samples_per_clip
        clips.append((t[:n], r[:n]))
    return clips


if __name__ == "__main__":
    main()
