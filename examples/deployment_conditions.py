#!/usr/bin/env python3
"""Deployment-condition study: where does the defense work?

Sweeps the environmental knobs the paper's Sec. VIII evaluates — screen
size, ambient light, viewing distance, network quality — on a small
number of sessions each and prints a deployability matrix.  Mirrors the
full benchmark sweeps (Fig. 13, Sec. VIII-E/I) at example scale.

One deliberate subtlety: the verifier is enrolled **once, under the
nominal desk setup**, and then evaluated everywhere — exactly how a
deployed system works.  Enrolling per-condition would hide degradation:
in a reflection-free setup (phone at arm's length) genuine *and* attack
clips collapse onto the same featureless point, so a per-condition bank
"accepts" everyone and the TRR silently drops to zero.

Run:  python examples/deployment_conditions.py          (a few minutes)
"""

from repro import ChatVerifier, simulate_genuine_session
from repro.experiments.profiles import DEFAULT_ENVIRONMENT
from repro.experiments.simulate import simulate_attack_session
from repro.screen.display import LAPTOP_13_LCD, PHONE_6_OLED

SESSIONS = 4


def evaluate(verifier: ChatVerifier, env) -> tuple[float, float]:
    """(TAR, TRR) on a few sessions under the given environment."""
    accepted = sum(
        not verifier.verify_session(
            simulate_genuine_session(duration_s=15.0, seed=8100 + s, env=env)
        ).is_attacker
        for s in range(SESSIONS)
    )
    rejected = sum(
        verifier.verify_session(
            simulate_attack_session(duration_s=15.0, seed=8200 + s, env=env)
        ).is_attacker
        for s in range(SESSIONS)
    )
    return accepted / SESSIONS, rejected / SESSIONS


def main() -> None:
    print("=== Deployment-condition study ===")
    print(f"({SESSIONS} genuine + {SESSIONS} attack sessions per condition;")
    print(" enrollment happens ONCE, under the nominal desk setup)\n")

    print("enrolling under: desk, 27\" monitor, 50 lux ambient ...")
    verifier = ChatVerifier()
    verifier.enroll(
        [
            simulate_genuine_session(
                duration_s=15.0, seed=8000 + s, env=DEFAULT_ENVIRONMENT
            )
            for s in range(12)
        ]
    )

    conditions = [
        ("desk, 27\" monitor, 50 lux", DEFAULT_ENVIRONMENT),
        (
            "laptop, 13\" screen",
            DEFAULT_ENVIRONMENT.replace(screen=LAPTOP_13_LCD),
        ),
        (
            "phone at arm's length",
            DEFAULT_ENVIRONMENT.replace(screen=PHONE_6_OLED),
        ),
        (
            "phone held close (10 cm)",
            DEFAULT_ENVIRONMENT.replace(screen=PHONE_6_OLED, viewing_distance_m=0.1),
        ),
        (
            "bright room (240 lux)",
            DEFAULT_ENVIRONMENT.replace(prover_ambient_lux=240.0),
        ),
        (
            "dim room (15 lux)",
            DEFAULT_ENVIRONMENT.replace(prover_ambient_lux=15.0),
        ),
        (
            "bad network (5% loss, 300 ms)",
            DEFAULT_ENVIRONMENT.replace(
                loss_rate=0.05, uplink_delay_s=0.15, downlink_delay_s=0.15
            ),
        ),
    ]

    print(f"\n{'condition':>30s} {'TAR':>6s} {'TRR':>6s}")
    print("-" * 46)
    for label, env in conditions:
        tar, trr = evaluate(verifier, env)
        print(f"{label:>30s} {tar:6.2f} {trr:6.2f}")

    print("\nreading guide (paper Sec. VIII-E/I):")
    print(" * big screens near the face: strong reflection, best accuracy;")
    print(" * a phone at arm's length delivers too little light -> genuine")
    print("   users look featureless and are rejected; held close it works;")
    print(" * strong ambient light erodes acceptance; security holds;")
    print(" * ordinary network impairments are absorbed by delay removal.")


if __name__ == "__main__":
    main()
