"""Fault injection wrappers: FaultyChannel and record-level vision faults."""

import numpy as np
import pytest

from repro.chat.session import SessionRecord
from repro.faults import FaultSpec, FaultyChannel, apply_faults_to_record
from repro.net.channel import NetworkChannel
from repro.net.packet import Packetizer
from repro.video.codec import VideoCodec
from repro.video.frame import Frame, blank_frame
from repro.video.stream import VideoStream


def _packets(n=60, dt=0.1):
    codec = VideoCodec()
    packetizer = Packetizer(mtu_bytes=200)
    packets = []
    for i in range(n):
        encoded = codec.encode(blank_frame(16, 16, timestamp=i * dt))
        packets.extend(packetizer.packetize(encoded, send_time=i * dt))
    return packets


def _schedule(spec, duration=10.0, seed=0):
    return spec.schedule(duration, 10.0, seed=seed)


class TestFaultyChannel:
    def test_clear_schedule_is_transparent(self):
        packets = _packets()
        clean = NetworkChannel(base_delay_s=0.05, jitter_s=0.01, seed=9)
        wrapped = FaultyChannel(
            NetworkChannel(base_delay_s=0.05, jitter_s=0.01, seed=9),
            _schedule(FaultSpec()),
        )
        a = clean.transmit_all(packets)
        b = wrapped.transmit_all(packets)
        assert [x.arrival_time for x in a] == [x.arrival_time for x in b]

    def test_burst_drops_packets_and_counts_them(self):
        schedule = _schedule(FaultSpec(loss_burst_rate=1.0))
        wrapped = FaultyChannel(NetworkChannel(loss_rate=0.0, seed=1), schedule)
        packets = _packets()
        assert wrapped.transmit_all(packets) == []
        assert wrapped.stats.lost == len(packets)

    def test_inner_rng_unaffected_by_bursts(self):
        # The inner channel must consume the same draws whether or not a
        # burst eats the packet, so post-burst arrivals are identical.
        packets = _packets()
        spec = FaultSpec(loss_burst_rate=0.4, mean_burst_s=0.5)
        clean = NetworkChannel(base_delay_s=0.05, jitter_s=0.02, seed=4)
        wrapped = FaultyChannel(
            NetworkChannel(base_delay_s=0.05, jitter_s=0.02, seed=4),
            _schedule(spec, seed=2),
        )
        clean_times = {
            d.packet.send_time: d.arrival_time for d in clean.transmit_all(packets)
        }
        for delivered in wrapped.transmit_all(packets):
            assert delivered.arrival_time == clean_times[delivered.packet.send_time]

    def test_jitter_spike_delays_arrivals(self):
        spec = FaultSpec(jitter_spike_rate=1.0, jitter_spike_s=0.2)
        schedule = _schedule(spec)
        wrapped = FaultyChannel(
            NetworkChannel(base_delay_s=0.05, jitter_s=0.0, seed=1), schedule
        )
        extra = [
            d.arrival_time - d.packet.send_time - 0.05
            for d in wrapped.transmit_all(_packets())
        ]
        assert min(extra) >= 0.0
        assert np.mean(extra) == pytest.approx(0.2, rel=0.5)

    def test_clock_skew_stretches_arrival_times(self):
        schedule = _schedule(FaultSpec(clock_skew=0.1))
        wrapped = FaultyChannel(
            NetworkChannel(base_delay_s=0.1, jitter_s=0.0, seed=1), schedule
        )
        for delivered in wrapped.transmit_all(_packets(20)):
            expected = (delivered.packet.send_time + 0.1) * 1.1
            assert delivered.arrival_time == pytest.approx(expected)


def _record(ticks=40, fps=10.0):
    rng = np.random.default_rng(0)
    transmitted = VideoStream(fps=fps)
    received = VideoStream(fps=fps)
    for i in range(ticks):
        t = i / fps
        transmitted.append(
            Frame(pixels=rng.uniform(0.2, 0.8, (8, 8, 3)), timestamp=t)
        )
        received.append(
            Frame(
                pixels=rng.uniform(0.2, 0.8, (8, 8, 3)),
                timestamp=t,
                metadata={"fresh": True},
            )
        )
    return SessionRecord(transmitted=transmitted, received=received, fps=fps, stats={})


class TestApplyFaultsToRecord:
    def test_clear_schedule_leaves_frames_alone(self):
        record = _record()
        schedule = _schedule(FaultSpec())
        faulted = apply_faults_to_record(record, schedule)
        for before, after in zip(record.received, faulted.received):
            assert np.array_equal(before.pixels, after.pixels)
        assert faulted.stats["fault_frozen_ticks"] == 0
        assert faulted.stats["fault_dropout_ticks"] == 0

    def test_freeze_repeats_previous_frame(self):
        record = _record()
        schedule = _schedule(FaultSpec(freeze_rate=1.0))
        faulted = apply_faults_to_record(record, schedule)
        frames = list(faulted.received)
        # First frame has no predecessor; every later one repeats it.
        for frame in frames[1:]:
            assert np.array_equal(frame.pixels, frames[0].pixels)
            assert frame.metadata["fresh"] is False
            assert frame.metadata["fault_frozen"] is True
        assert faulted.stats["fault_frozen_ticks"] == len(frames) - 1

    def test_dropout_blacks_out_pixels(self):
        record = _record()
        schedule = _schedule(FaultSpec(landmark_dropout_rate=1.0))
        faulted = apply_faults_to_record(record, schedule)
        for frame in faulted.received:
            assert frame.pixels.max() == pytest.approx(0.0)
            assert frame.metadata["landmark_dropout"] is True

    def test_transmitted_stream_is_untouched(self):
        record = _record()
        schedule = _schedule(
            FaultSpec(freeze_rate=1.0, landmark_dropout_rate=1.0)
        )
        faulted = apply_faults_to_record(record, schedule)
        for before, after in zip(record.transmitted, faulted.transmitted):
            assert np.array_equal(before.pixels, after.pixels)

    def test_freeze_timestamps_follow_the_clock(self):
        record = _record()
        schedule = _schedule(FaultSpec(freeze_rate=1.0))
        faulted = apply_faults_to_record(record, schedule)
        for original, frame in zip(record.received, faulted.received):
            assert frame.timestamp == original.timestamp

    def test_summary_attached_to_stats(self):
        faulted = apply_faults_to_record(
            _record(), _schedule(FaultSpec(freeze_rate=0.5))
        )
        assert "freeze_fraction" in faulted.stats["fault_summary"]
