"""Fault schedules: seeded compilation of FaultSpec into tick arrays."""

import numpy as np
import pytest

from repro.faults import FaultSchedule, FaultSpec


class TestFaultSpecValidation:
    def test_rates_must_be_fractions(self):
        with pytest.raises(ValueError):
            FaultSpec(loss_burst_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(landmark_dropout_rate=-0.1)

    def test_lengths_must_be_non_negative(self):
        with pytest.raises(ValueError):
            FaultSpec(mean_burst_s=-1.0)

    def test_clock_skew_bounded(self):
        with pytest.raises(ValueError):
            FaultSpec(clock_skew=0.9)

    def test_schedule_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            FaultSpec().schedule(0.0, 10.0)
        with pytest.raises(ValueError):
            FaultSpec().schedule(10.0, 0.0)


class TestScaled:
    def test_severity_zero_clears_every_rate(self):
        spec = FaultSpec(
            loss_burst_rate=0.3,
            jitter_spike_rate=0.2,
            landmark_dropout_rate=0.5,
            freeze_rate=0.4,
            clock_skew=0.02,
        ).scaled(0.0)
        assert spec.loss_burst_rate == pytest.approx(0.0)
        assert spec.landmark_dropout_rate == pytest.approx(0.0)
        assert spec.clock_skew == pytest.approx(0.0)

    def test_rates_cap_at_one(self):
        spec = FaultSpec(loss_burst_rate=0.6).scaled(3.0)
        assert spec.loss_burst_rate == pytest.approx(1.0)

    def test_burst_lengths_are_kept(self):
        spec = FaultSpec(loss_burst_rate=0.1, mean_burst_s=2.5).scaled(0.5)
        assert spec.mean_burst_s == pytest.approx(2.5)

    def test_negative_severity_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec().scaled(-1.0)


class TestScheduleCompilation:
    def test_same_seed_is_bit_identical(self):
        spec = FaultSpec(
            loss_burst_rate=0.2, jitter_spike_rate=0.3, landmark_dropout_rate=0.4
        )
        a = spec.schedule(30.0, 10.0, seed=5)
        b = spec.schedule(30.0, 10.0, seed=5)
        assert np.array_equal(a.loss_burst, b.loss_burst)
        assert np.array_equal(a.jitter_extra_s, b.jitter_extra_s)
        assert np.array_equal(a.landmark_dropout, b.landmark_dropout)
        assert np.array_equal(a.freeze, b.freeze)

    def test_different_seed_differs(self):
        spec = FaultSpec(loss_burst_rate=0.5)
        a = spec.schedule(60.0, 10.0, seed=1)
        b = spec.schedule(60.0, 10.0, seed=2)
        assert not np.array_equal(a.loss_burst, b.loss_burst)

    def test_zero_rates_give_all_clear(self):
        schedule = FaultSpec().schedule(20.0, 10.0, seed=0)
        assert not schedule.loss_burst.any()
        assert not schedule.landmark_dropout.any()
        assert not schedule.freeze.any()
        assert not schedule.jitter_extra_s.any()

    def test_full_dropout_covers_every_tick(self):
        schedule = FaultSpec(landmark_dropout_rate=1.0).schedule(20.0, 10.0, seed=0)
        assert schedule.landmark_dropout.all()

    def test_occupancy_tracks_the_requested_rate(self):
        spec = FaultSpec(loss_burst_rate=0.3, mean_burst_s=1.0)
        schedule = spec.schedule(600.0, 10.0, seed=3)
        assert 0.15 <= schedule.loss_burst.mean() <= 0.45

    def test_faults_come_in_bursts_not_drizzle(self):
        spec = FaultSpec(loss_burst_rate=0.3, mean_burst_s=2.0)
        schedule = spec.schedule(600.0, 10.0, seed=3)
        on = schedule.loss_burst.astype(int)
        starts = int(((on[1:] == 1) & (on[:-1] == 0)).sum()) + int(on[0])
        mean_run = on.sum() / max(starts, 1)
        assert mean_run > 5.0  # 2 s bursts at 10 Hz >> i.i.d.'s ~1.4 ticks

    def test_tick_of_clamps_to_schedule(self):
        schedule = FaultSpec().schedule(10.0, 10.0, seed=0)
        assert schedule.tick_of(-5.0) == 0
        assert schedule.tick_of(99.0) == schedule.ticks - 1

    def test_summary_reports_realized_fractions(self):
        schedule = FaultSpec(freeze_rate=0.5, clock_skew=0.01).schedule(
            100.0, 10.0, seed=7
        )
        summary = schedule.summary()
        assert summary["freeze_fraction"] == pytest.approx(schedule.freeze.mean())
        assert summary["clock_skew"] == pytest.approx(0.01)

    def test_mismatched_array_lengths_rejected(self):
        spec = FaultSpec()
        with pytest.raises(ValueError):
            FaultSchedule(
                spec=spec,
                tick_rate_hz=10.0,
                loss_burst=np.zeros(10, dtype=bool),
                jitter_extra_s=np.zeros(5),
                landmark_dropout=np.zeros(10, dtype=bool),
                freeze=np.zeros(10, dtype=bool),
                clock_skew=0.0,
            )
