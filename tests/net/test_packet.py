"""Packetization."""

import pytest

from repro.net.packet import Packet, Packetizer
from repro.video.codec import VideoCodec
from repro.video.frame import blank_frame


def _encoded(payload_hint=None, size=(96, 96)):
    codec = VideoCodec()
    return codec.encode(blank_frame(*size))


class TestPacketizer:
    def test_chunk_sizes_sum_to_payload(self):
        packetizer = Packetizer(mtu_bytes=100)
        encoded = _encoded()
        packets = packetizer.packetize(encoded, send_time=1.0)
        assert sum(p.size_bytes for p in packets) == encoded.payload_bytes

    def test_chunk_count_consistent(self):
        packetizer = Packetizer(mtu_bytes=100)
        encoded = _encoded()
        packets = packetizer.packetize(encoded, send_time=1.0)
        expected = -(-encoded.payload_bytes // 100)
        assert len(packets) == expected
        assert all(p.chunk_count == expected for p in packets)

    def test_sequence_numbers_global_and_increasing(self):
        packetizer = Packetizer(mtu_bytes=100)
        first = packetizer.packetize(_encoded(), send_time=0.0)
        second = packetizer.packetize(_encoded(), send_time=0.1)
        seqs = [p.sequence for p in first + second]
        assert seqs == list(range(len(seqs)))

    def test_small_frame_single_packet(self):
        packetizer = Packetizer(mtu_bytes=10**6)
        packets = packetizer.packetize(_encoded(), send_time=0.0)
        assert len(packets) == 1

    def test_send_time_stamped(self):
        packets = Packetizer().packetize(_encoded(), send_time=3.25)
        assert all(p.send_time == 3.25 for p in packets)

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ValueError):
            Packetizer(mtu_bytes=10)


class TestPacketValidation:
    def test_chunk_index_bounds(self):
        encoded = _encoded()
        with pytest.raises(ValueError):
            Packet(
                sequence=0,
                frame_id=0,
                chunk_index=2,
                chunk_count=2,
                size_bytes=10,
                send_time=0.0,
                frame=encoded,
            )

    def test_positive_size(self):
        encoded = _encoded()
        with pytest.raises(ValueError):
            Packet(
                sequence=0,
                frame_id=0,
                chunk_index=0,
                chunk_count=1,
                size_bytes=0,
                send_time=0.0,
                frame=encoded,
            )
