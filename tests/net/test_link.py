"""MediaLink: the composed one-way media path."""

import numpy as np
import pytest

from repro.net.channel import NetworkChannel
from repro.net.jitterbuffer import JitterBuffer
from repro.net.link import MediaLink
from repro.video.frame import blank_frame


def _link(delay=0.05, playout=0.1, loss=0.0, seed=0):
    return MediaLink(
        channel=NetworkChannel(base_delay_s=delay, jitter_s=0.0, loss_rate=loss, seed=seed),
        jitter_buffer=JitterBuffer(playout_delay_s=playout),
    )


class TestRoundTrip:
    def test_frame_arrives_after_one_way_delay(self):
        link = _link()
        link.send(blank_frame(16, 16, value=80.0, timestamp=1.0))
        assert link.receive(1.05) is None
        frame = link.receive(1.11)
        assert frame is not None
        assert np.allclose(frame.pixels, 80.0)

    def test_pixels_survive_codec(self):
        link = _link()
        original = blank_frame(16, 16, value=123.0, timestamp=0.0)
        link.send(original)
        received = link.receive(1.0)
        assert np.abs(received.pixels - original.pixels).max() <= 1.0

    def test_playout_metadata_attached(self):
        link = _link()
        link.send(blank_frame(8, 8, timestamp=0.0))
        assert link.receive(1.0).metadata["playout_time"] == pytest.approx(1.0)

    def test_one_way_delay_property(self):
        assert _link(delay=0.08, playout=0.12).one_way_delay_s == pytest.approx(0.2)


class TestStreaming:
    def test_frames_play_out_in_order(self):
        link = _link()
        for i in range(5):
            link.send(blank_frame(8, 8, value=float(i), timestamp=i * 0.1))
        values = []
        t = 0.0
        while t < 1.5:
            frame = link.receive(t)
            if frame is not None:
                values.append(frame.pixels[0, 0, 0])
            t += 0.1
        assert values == sorted(values)
        assert len(values) == 5

    def test_total_loss_delivers_nothing(self):
        link = MediaLink(
            channel=NetworkChannel(loss_rate=0.99, seed=1),
            jitter_buffer=JitterBuffer(playout_delay_s=0.05),
        )
        delivered = 0
        for i in range(30):
            link.send(blank_frame(8, 8, timestamp=i * 0.1))
            if link.receive(i * 0.1 + 0.01) is not None:
                delivered += 1
        assert delivered < 5
