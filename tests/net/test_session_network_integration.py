"""Network-path integration: how impairments surface in the chat loop."""

import numpy as np
import pytest

from repro.chat.session import VideoChatSession
from repro.experiments.profiles import Environment
from repro.experiments.simulate import (
    build_genuine_prover,
    build_links,
    build_verifier,
    default_user,
    simulate_genuine_session,
)
from repro.core.features import extract_features
from repro.core.luminance import received_luminance_signal, transmitted_luminance_signal


def _run(env, seed=0, duration=15.0):
    verifier = build_verifier(env, seed)
    prover = build_genuine_prover(default_user(), env, seed + 1)
    uplink, downlink = build_links(env, seed + 2)
    session = VideoChatSession(
        verifier=verifier, prover=prover, uplink=uplink, downlink=downlink, fps=env.fps
    )
    return session.run(duration)


def _features(record):
    t = transmitted_luminance_signal(record.transmitted)
    r = received_luminance_signal(record.received).luminance
    return extract_features(t, r)


BASE = Environment(frame_size=(64, 64), verifier_frame_size=(48, 48))


class TestDelayPropagation:
    @pytest.mark.parametrize("one_way_ms", [40, 120])
    def test_estimated_delay_tracks_network(self, one_way_ms):
        env = BASE.replace(
            uplink_delay_s=one_way_ms / 1000.0, downlink_delay_s=one_way_ms / 1000.0
        )
        fx = _features(_run(env, seed=20 + one_way_ms))
        # Round trip plus two playout deadlines (adaptive, see
        # simulate._playout_delay); display/AE add a little on top.
        delay = one_way_ms / 1000.0
        playout = max(env.playout_delay_s, delay + 2 * env.jitter_s + 0.02)
        nominal_rtt = 2 * delay + 2 * playout
        assert fx.delay_s == pytest.approx(nominal_rtt, abs=0.5)

    def test_high_latency_path_still_verifiable(self):
        """With the adaptive playout deadline, even a 250 ms one-way path
        (a poor intercontinental link) keeps the reflection lag inside
        the matching tolerance and the clip verifies normally."""
        env = BASE.replace(uplink_delay_s=0.25, downlink_delay_s=0.25)
        fx = _features(_run(env, seed=31))
        assert fx.features.z1 == pytest.approx(1.0)
        assert fx.features.z3 > 0.7
        assert 0.4 < fx.delay_s < 1.0


class TestLossResilience:
    def test_moderate_loss_preserves_evidence(self):
        env = BASE.replace(loss_rate=0.05)
        record = _run(env, seed=41)
        assert record.stats["frozen_ticks"] > 0
        fx = _features(record)
        assert fx.features.z1 >= 0.5
        assert fx.features.z3 > 0.6

    def test_loss_statistics_exposed(self):
        env = BASE.replace(loss_rate=0.1)
        record = _run(env, seed=42)
        assert record.stats["uplink_loss_rate"] > 0.02
        assert record.stats["downlink_loss_rate"] > 0.02


class TestJitterResilience:
    def test_heavy_jitter_preserves_evidence(self):
        env = BASE.replace(jitter_s=0.06)
        fx = _features(_run(env, seed=51))
        assert fx.features.z3 > 0.6

    def test_jitter_does_not_reorder_playout(self):
        env = BASE.replace(jitter_s=0.08)
        record = _run(env, seed=52)
        sources = [
            f.metadata.get("frame_id", -1)
            for f in record.received
            if "frame_id" in f.metadata
        ]
        assert sources == sorted(sources)


class TestCodecQuality:
    def test_coarse_codec_still_verifiable(self):
        # Quantization at step 4 leaves the luminance steps intact.
        from repro.net.link import MediaLink
        from repro.net.channel import NetworkChannel
        from repro.net.jitterbuffer import JitterBuffer
        from repro.video.codec import VideoCodec

        env = BASE
        verifier = build_verifier(env, 61)
        prover = build_genuine_prover(default_user(), env, 62)
        uplink = MediaLink(
            codec=VideoCodec(quality=0.25),
            channel=NetworkChannel(seed=63),
            jitter_buffer=JitterBuffer(),
        )
        downlink = MediaLink(
            codec=VideoCodec(quality=0.25),
            channel=NetworkChannel(seed=64),
            jitter_buffer=JitterBuffer(),
        )
        session = VideoChatSession(
            verifier=verifier, prover=prover, uplink=uplink, downlink=downlink, fps=env.fps
        )
        fx = _features(session.run(15.0))
        assert fx.features.z3 > 0.7
        assert fx.features.z1 >= 0.5
