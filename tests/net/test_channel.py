"""Network channel: delay, jitter, loss."""

import numpy as np
import pytest

from repro.net.channel import NetworkChannel
from repro.net.packet import Packetizer
from repro.video.codec import VideoCodec
from repro.video.frame import blank_frame


def _packets(n=200, mtu=200):
    codec = VideoCodec()
    packetizer = Packetizer(mtu_bytes=mtu)
    packets = []
    for i in range(n):
        encoded = codec.encode(blank_frame(16, 16, timestamp=i * 0.1))
        packets.extend(packetizer.packetize(encoded, send_time=i * 0.1))
    return packets


class TestDelay:
    def test_constant_delay_without_jitter(self):
        channel = NetworkChannel(base_delay_s=0.08, jitter_s=0.0, loss_rate=0.0)
        for delivered in channel.transmit_all(_packets(10)):
            assert delivered.arrival_time == pytest.approx(
                delivered.packet.send_time + 0.08
            )

    def test_jitter_adds_nonnegative_delay(self):
        channel = NetworkChannel(base_delay_s=0.05, jitter_s=0.02, seed=1)
        extra = [
            d.arrival_time - d.packet.send_time - 0.05
            for d in channel.transmit_all(_packets(100))
        ]
        assert min(extra) >= 0.0
        assert np.mean(extra) == pytest.approx(0.02, rel=0.3)


class TestLoss:
    def test_zero_loss_delivers_everything(self):
        channel = NetworkChannel(loss_rate=0.0)
        packets = _packets(50)
        assert len(channel.transmit_all(packets)) == len(packets)

    def test_loss_rate_approximated(self):
        channel = NetworkChannel(loss_rate=0.2, seed=2)
        packets = _packets(400)
        delivered = channel.transmit_all(packets)
        observed = 1.0 - len(delivered) / len(packets)
        assert observed == pytest.approx(0.2, abs=0.05)

    def test_stats_track_losses(self):
        channel = NetworkChannel(loss_rate=0.5, seed=3)
        packets = _packets(100)
        channel.transmit_all(packets)
        assert channel.stats.sent == len(packets)
        assert channel.stats.lost > 0
        assert channel.stats.loss_rate == pytest.approx(
            channel.stats.lost / channel.stats.sent
        )

    def test_bytes_counted(self):
        channel = NetworkChannel()
        packets = _packets(10)
        channel.transmit_all(packets)
        assert channel.stats.bytes_sent == sum(p.size_bytes for p in packets)


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        packets = _packets(100)
        a = NetworkChannel(loss_rate=0.3, jitter_s=0.05, seed=7)
        b = NetworkChannel(loss_rate=0.3, jitter_s=0.05, seed=7)
        arrivals_a = [d.arrival_time for d in a.transmit_all(packets)]
        arrivals_b = [d.arrival_time for d in b.transmit_all(packets)]
        assert arrivals_a == arrivals_b


class TestDrawAlignment:
    """transmit() must consume the same RNG draws per packet no matter
    which knobs are active, so toggling one knob never reshuffles the
    randomness feeding another."""

    def test_jitter_knob_does_not_change_which_packets_drop(self):
        packets = _packets(300)
        no_jitter = NetworkChannel(loss_rate=0.3, jitter_s=0.0, seed=11)
        jittery = NetworkChannel(loss_rate=0.3, jitter_s=0.05, seed=11)
        lost_a = {d.packet.sequence for d in no_jitter.transmit_all(packets)}
        lost_b = {d.packet.sequence for d in jittery.transmit_all(packets)}
        assert lost_a == lost_b

    def test_loss_knob_does_not_change_arrival_times(self):
        packets = _packets(300)
        lossless = NetworkChannel(loss_rate=0.0, jitter_s=0.05, seed=12)
        lossy = NetworkChannel(loss_rate=0.3, jitter_s=0.05, seed=12)
        all_arrivals = {
            d.packet.sequence: d.arrival_time
            for d in lossless.transmit_all(packets)
        }
        delivered = lossy.transmit_all(packets)
        assert 0 < len(delivered) < len(packets)
        for d in delivered:
            assert d.arrival_time == all_arrivals[d.packet.sequence]


class TestValidation:
    def test_bad_loss_rate(self):
        with pytest.raises(ValueError):
            NetworkChannel(loss_rate=1.0)

    def test_negative_delay(self):
        with pytest.raises(ValueError):
            NetworkChannel(base_delay_s=-0.1)
