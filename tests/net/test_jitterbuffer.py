"""Jitter buffer: reassembly, playout deadlines, loss accounting."""

import pytest

from repro.net.channel import DeliveredPacket
from repro.net.jitterbuffer import JitterBuffer
from repro.net.packet import Packetizer
from repro.video.codec import VideoCodec
from repro.video.frame import blank_frame


# One codec/packetizer per stream: frame ids must be unique per sender,
# exactly as MediaLink guarantees in production.
_CODEC = VideoCodec()
_PACKETIZER = Packetizer(mtu_bytes=150)


def _frame_packets(timestamp):
    # 96x96 frames compress to ~500 bytes -> several 150-byte chunks.
    encoded = _CODEC.encode(blank_frame(96, 96, timestamp=timestamp))
    return _PACKETIZER.packetize(encoded, send_time=timestamp)


def _deliver(buffer, packets, delay=0.05):
    for p in packets:
        buffer.push(DeliveredPacket(packet=p, arrival_time=p.send_time + delay))


class TestPlayout:
    def test_frame_released_at_deadline(self):
        buffer = JitterBuffer(playout_delay_s=0.15)
        _deliver(buffer, _frame_packets(1.0))
        assert buffer.playout(1.1) is None  # before deadline
        frame = buffer.playout(1.16)
        assert frame is not None
        assert frame.timestamp == pytest.approx(1.0)

    def test_frame_released_once(self):
        buffer = JitterBuffer(playout_delay_s=0.1)
        _deliver(buffer, _frame_packets(1.0))
        assert buffer.playout(1.2) is not None
        assert buffer.playout(1.3) is None

    def test_newest_frame_wins_when_multiple_due(self):
        buffer = JitterBuffer(playout_delay_s=0.1)
        _deliver(buffer, _frame_packets(1.0))
        _deliver(buffer, _frame_packets(1.1))
        frame = buffer.playout(1.5)
        assert frame.timestamp == pytest.approx(1.1)
        assert buffer.stats.played == 1

    def test_early_packets_not_visible(self):
        buffer = JitterBuffer(playout_delay_s=0.05)
        packets = _frame_packets(1.0)
        # Packet physically arrives late (after its own deadline).
        for p in packets:
            buffer.push(DeliveredPacket(packet=p, arrival_time=1.5))
        assert buffer.playout(1.1) is None  # deadline passed, incomplete
        assert buffer.stats.lost_frames == 1


class TestLossHandling:
    def test_missing_chunk_means_lost_frame(self):
        buffer = JitterBuffer(playout_delay_s=0.1)
        packets = _frame_packets(1.0)
        assert len(packets) > 1
        _deliver(buffer, packets[:-1])  # drop last chunk
        assert buffer.playout(2.0) is None
        assert buffer.stats.lost_frames == 1

    def test_late_packet_for_released_frame_counted(self):
        buffer = JitterBuffer(playout_delay_s=0.1)
        packets = _frame_packets(1.0)
        _deliver(buffer, packets)
        buffer.playout(1.5)
        buffer.push(DeliveredPacket(packet=packets[0], arrival_time=2.0))
        assert buffer.stats.late_packets == 1

    def test_loss_then_recovery(self):
        buffer = JitterBuffer(playout_delay_s=0.1)
        _deliver(buffer, _frame_packets(1.0)[:-1])  # lost
        _deliver(buffer, _frame_packets(1.1))  # complete
        frame = buffer.playout(1.5)
        assert frame is not None
        assert frame.timestamp == pytest.approx(1.1)
        assert buffer.stats.lost_frames == 1


class TestDuplicatesAndLateArrivals:
    def test_late_duplicate_does_not_unfinish_a_complete_frame(self):
        """A retransmit arriving after the deadline must not overwrite the
        original arrival time and flip a decodable frame to lost."""
        buffer = JitterBuffer(playout_delay_s=0.1)
        packets = _frame_packets(1.0)
        _deliver(buffer, packets, delay=0.02)  # all chunks well in time
        # The same chunk shows up again, far past the playout deadline.
        buffer.push(DeliveredPacket(packet=packets[0], arrival_time=5.0))
        frame = buffer.playout(1.2)
        assert frame is not None
        assert buffer.stats.lost_frames == 0
        assert buffer.stats.duplicate_packets == 1
        assert buffer.stats.late_packets == 0

    def test_earlier_duplicate_copy_wins(self):
        """When the duplicate is the *earlier* copy, the frame becomes
        playable at the earlier time."""
        buffer = JitterBuffer(playout_delay_s=0.1)
        packets = _frame_packets(1.0)
        # First copies arrive very late, duplicates arrive in time.
        for p in packets:
            buffer.push(DeliveredPacket(packet=p, arrival_time=5.0))
        for p in packets:
            buffer.push(DeliveredPacket(packet=p, arrival_time=1.05))
        assert buffer.playout(1.2) is not None
        assert buffer.stats.duplicate_packets == len(packets)

    def test_duplicate_chunk_cannot_stand_in_for_missing_one(self):
        """len(chunks) == chunks_needed must not fake completeness when a
        duplicate index is doing the counting."""
        buffer = JitterBuffer(playout_delay_s=0.1)
        packets = _frame_packets(1.0)
        assert len(packets) > 1
        _deliver(buffer, packets[:-1])  # last chunk never arrives
        # Re-deliver the first chunk: the pending map holds as many
        # entries as chunks_needed, but index coverage is incomplete.
        _deliver(buffer, packets[:1])
        assert buffer.playout(2.0) is None
        assert buffer.stats.lost_frames == 1
        assert buffer.stats.duplicate_packets == 1

    def test_late_packet_after_lost_flush_does_not_resurrect(self):
        """A packet for a frame already flushed as lost is dropped and
        counted once as late — it must not re-open the frame or perturb
        later playout ordering."""
        buffer = JitterBuffer(playout_delay_s=0.1)
        first = _frame_packets(1.0)
        _deliver(buffer, first[:-1])  # incomplete -> lost at deadline
        assert buffer.playout(1.5) is None
        assert buffer.stats.lost_frames == 1
        # The straggler chunk finally shows up.
        buffer.push(DeliveredPacket(packet=first[-1], arrival_time=1.6))
        assert buffer.stats.late_packets == 1
        assert buffer.stats.duplicate_packets == 0
        assert buffer.pending_count == 0
        # A newer frame still flows through normally.
        second = _frame_packets(2.0)
        _deliver(buffer, second)
        frame = buffer.playout(2.5)
        assert frame is not None
        assert frame.timestamp == pytest.approx(2.0)

    def test_duplicate_of_released_frame_counts_late_not_duplicate(self):
        buffer = JitterBuffer(playout_delay_s=0.1)
        packets = _frame_packets(1.0)
        _deliver(buffer, packets)
        assert buffer.playout(1.5) is not None
        buffer.push(DeliveredPacket(packet=packets[0], arrival_time=2.0))
        buffer.push(DeliveredPacket(packet=packets[0], arrival_time=2.1))
        assert buffer.stats.late_packets == 2
        assert buffer.stats.duplicate_packets == 0


class TestAccounting:
    def test_pending_count(self):
        buffer = JitterBuffer(playout_delay_s=1.0)
        _deliver(buffer, _frame_packets(1.0))
        _deliver(buffer, _frame_packets(1.1))
        assert buffer.pending_count == 2
        buffer.playout(5.0)
        assert buffer.pending_count == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            JitterBuffer(playout_delay_s=-0.1)
