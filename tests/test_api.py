"""The public facade: one blessed import surface for applications."""

import repro
import repro.api as api


class TestFacade:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_top_level_package_mirrors_facade(self):
        """`from repro import X` and `from repro.api import X` agree."""
        for name in api.__all__:
            if hasattr(repro, name):
                assert getattr(repro, name) is getattr(api, name)

    def test_core_entry_points_are_the_real_ones(self):
        from repro.core.config import PAPER_CONFIG
        from repro.core.pipeline import ChatVerifier, VerificationReport
        from repro.engine import ExecutionEngine

        assert api.PAPER_CONFIG is PAPER_CONFIG
        assert api.ChatVerifier is ChatVerifier
        assert api.VerificationReport is VerificationReport
        assert api.ExecutionEngine is ExecutionEngine

    def test_deprecated_aliases_still_point_at_the_report(self):
        from repro.core.pipeline import DiagnosedVerdict, SessionVerdict

        assert SessionVerdict is api.VerificationReport
        assert DiagnosedVerdict is api.VerificationReport
