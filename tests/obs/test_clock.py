"""obs.clock: the clock abstraction and its two implementations."""

import pytest

from repro.obs.clock import MONOTONIC_CLOCK, ManualClock, MonotonicClock


class TestManualClock:
    def test_starts_where_told(self):
        assert ManualClock().now() == 0.0  # reprolint: disable=R004
        assert ManualClock(start=41.5).now() == 41.5  # reprolint: disable=R004

    def test_advance_is_exact(self):
        clock = ManualClock()
        clock.advance(0.25)
        clock.advance(1.0)
        # Exactness is the contract: ManualClock must add, not drift.
        assert clock.now() == 1.25  # reprolint: disable=R004

    def test_rejects_negative_advance(self):
        with pytest.raises(ValueError, match="backwards"):
            ManualClock().advance(-0.1)

    def test_zero_advance_allowed(self):
        clock = ManualClock(start=3.0)
        clock.advance(0.0)
        assert clock.now() == 3.0  # reprolint: disable=R004


class TestMonotonicClock:
    def test_is_monotonic(self):
        clock = MonotonicClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_module_singleton_exists(self):
        assert isinstance(MONOTONIC_CLOCK, MonotonicClock)
        assert MONOTONIC_CLOCK.now() >= 0.0
