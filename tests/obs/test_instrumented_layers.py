"""Layer-by-layer counter contracts: streaming, chat, net, faults.

Each hot-path layer exposes a small fixed metric vocabulary; these tests
pin the names, labels, and the invariant that instrumentation never
perturbs the seeded signal chain it observes.
"""

import numpy as np
import pytest

from repro.chat.session import VideoChatSession
from repro.core.config import DetectorConfig
from repro.core.detector import DetectionResult, LivenessDetector
from repro.core.features import FeatureVector
from repro.core.streaming import ClipQuality, QualityIssue, StreamingVerifier
from repro.experiments.profiles import Environment
from repro.experiments.simulate import (
    build_genuine_prover,
    build_links,
    build_verifier,
    default_user,
)
from repro.faults import FaultSpec, FaultyChannel, apply_faults_to_record
from repro.net.channel import NetworkChannel
from repro.net.packet import Packetizer
from repro.obs import Instrumentation
from repro.video.codec import VideoCodec
from repro.video.frame import blank_frame


def _packets(n=60, dt=0.1):
    codec = VideoCodec()
    packetizer = Packetizer(mtu_bytes=200)
    packets = []
    for i in range(n):
        encoded = codec.encode(blank_frame(16, 16, timestamp=i * dt))
        packets.extend(packetizer.packetize(encoded, send_time=i * dt))
    return packets


class TestNetworkChannelCounters:
    def test_sent_lost_and_jitter_series(self):
        instr = Instrumentation.enabled()
        channel = NetworkChannel(
            base_delay_s=0.05, jitter_s=0.02, loss_rate=0.5, seed=3,
            instrumentation=instr,
        )
        channel.transmit_all(_packets(100))
        snap = instr.snapshot()
        assert snap.counter_value("net_packets_sent_total") == channel.stats.sent
        assert snap.counter_value("net_packets_lost_total") == channel.stats.lost
        assert channel.stats.lost > 0
        jitter = snap.get("net_jitter_seconds", kind="histogram")
        assert jitter.count == channel.stats.sent

    def test_instrumentation_never_perturbs_arrivals(self):
        packets = _packets(80)
        bare = NetworkChannel(base_delay_s=0.05, jitter_s=0.02, loss_rate=0.2, seed=7)
        watched = NetworkChannel(
            base_delay_s=0.05, jitter_s=0.02, loss_rate=0.2, seed=7,
            instrumentation=Instrumentation.enabled(),
        )
        a = [(d.packet.send_time, d.arrival_time) for d in bare.transmit_all(packets)]
        b = [(d.packet.send_time, d.arrival_time) for d in watched.transmit_all(packets)]
        assert a == b


class TestFaultCounters:
    def _schedule(self, spec, duration=6.0, seed=0):
        return spec.schedule(duration, 10.0, seed=seed)

    def test_loss_burst_counted_per_dropped_packet(self):
        instr = Instrumentation.enabled()
        wrapped = FaultyChannel(
            NetworkChannel(loss_rate=0.0, seed=1),
            self._schedule(FaultSpec(loss_burst_rate=1.0)),
            instrumentation=instr,
        )
        packets = _packets(50)
        assert wrapped.transmit_all(packets) == []
        assert instr.snapshot().counter_value(
            "faults_injected_total", kind="loss_burst"
        ) == len(packets)

    def test_jitter_spike_counted(self):
        instr = Instrumentation.enabled()
        wrapped = FaultyChannel(
            NetworkChannel(loss_rate=0.0, seed=1),
            self._schedule(FaultSpec(jitter_spike_rate=1.0, jitter_spike_s=0.2)),
            instrumentation=instr,
        )
        delivered = wrapped.transmit_all(_packets(50))
        spikes = instr.snapshot().counter_value(
            "faults_injected_total", kind="jitter_spike"
        )
        assert spikes > 0
        assert spikes <= len(delivered)

    def test_record_faults_counted_only_when_present(self):
        from repro.chat.session import SessionRecord
        from repro.video.frame import Frame
        from repro.video.stream import VideoStream

        rng = np.random.default_rng(0)
        transmitted, received = VideoStream(fps=10.0), VideoStream(fps=10.0)
        for i in range(40):
            transmitted.append(
                Frame(pixels=rng.uniform(0.2, 0.8, (8, 8, 3)), timestamp=i / 10.0)
            )
            received.append(
                Frame(
                    pixels=rng.uniform(0.2, 0.8, (8, 8, 3)),
                    timestamp=i / 10.0,
                    metadata={"fresh": True},
                )
            )
        record = SessionRecord(
            transmitted=transmitted, received=received, fps=10.0, stats={}
        )

        clean = Instrumentation.enabled()
        apply_faults_to_record(record, self._schedule(FaultSpec(), duration=4.0), clean)
        assert clean.snapshot().counter_value("faults_injected_total", kind="freeze") == 0
        assert len(clean.snapshot().series) == 0  # zero-valued series suppressed

        instr = Instrumentation.enabled()
        spec = FaultSpec(freeze_rate=0.5, landmark_dropout_rate=0.5)
        apply_faults_to_record(record, self._schedule(spec, duration=4.0), instr)
        snap = instr.snapshot()
        assert snap.counter_value("faults_injected_total", kind="freeze") > 0
        assert snap.counter_value("faults_injected_total", kind="landmark_dropout") > 0


class TestChatSessionCounters:
    def test_ticks_and_span(self):
        instr = Instrumentation.enabled()
        env = Environment(frame_size=(64, 64), verifier_frame_size=(48, 48))
        uplink, downlink = build_links(env, 2)
        session = VideoChatSession(
            verifier=build_verifier(env, 0),
            prover=build_genuine_prover(default_user(), env, 1),
            uplink=uplink,
            downlink=downlink,
            fps=10.0,
            warmup_s=1.0,
            instrumentation=instr,
        )
        record = session.run(duration_s=3.0)
        snap = instr.snapshot()
        assert snap.counter_value("chat_ticks_total") == len(record.transmitted)
        assert snap.counter_value("chat_frozen_ticks_total") == record.stats[
            "frozen_ticks"
        ]
        spans = instr.drain_spans()
        assert [r["name"] for r in spans] == ["chat.session"]
        assert spans[0]["stage"] == "simulate"
        assert spans[0]["attrs"] == {"duration_s": 3.0}


def _bank(config):
    rng = np.random.default_rng(0)
    return [
        FeatureVector(
            z1=1.0,
            z2=float(rng.choice([1.0, 1.0, 1.0, 0.667])),
            z3=float(rng.uniform(0.9, 1.0)),
            z4=float(rng.uniform(0.02, 0.2)),
        )
        for _ in range(20)
    ]


def _result(rejected):
    return DetectionResult(
        features=FeatureVector(z1=1.0, z2=1.0, z3=1.0, z4=0.1),
        lof_score=10.0 if rejected else 1.0,
        threshold=3.0,
    )


def _short_clip_verifier(instr, rejected=False, quality=None, **kwargs):
    """A streaming verifier with 3 s clips and a stubbed detector core,
    so tests exercise the counting path without the full signal chain."""
    config = DetectorConfig().with_overrides(clip_duration_s=3.0)
    detector = LivenessDetector(config).fit(_bank(config))
    detector.verify_clip = lambda t, r, instrumentation=None: _result(rejected)
    verifier = StreamingVerifier(detector, instrumentation=instr, **kwargs)
    if quality is not None:
        verifier._grade = lambda *a, **kw: quality
    return verifier


def _feed_clips(verifier, clips):
    samples = verifier.config.samples_per_clip
    for i in range(clips * samples):
        frame = blank_frame(16, 16, timestamp=i / 10.0)
        verifier.push(frame, frame)


class TestStreamingCounters:
    def test_every_quality_issue_has_a_label(self):
        instr = Instrumentation.enabled()
        quality = ClipQuality(
            landmark_hit_fraction=0.0,
            frozen_fraction=1.0,
            transmitted_changes=0,
            received_changes=1,
            issues=tuple(QualityIssue),
        )
        verifier = _short_clip_verifier(instr, quality=quality)
        _feed_clips(verifier, 1)
        snap = instr.snapshot()
        for issue in QualityIssue:
            assert snap.counter_value(
                "streaming_quality_issues_total", issue=issue.name.lower()
            ) == 1
        # CHALLENGE_OBSCURED / SPURIOUS_RECEIVED_CHANGE explicitly covered.
        assert snap.counter_value(
            "streaming_quality_issues_total", issue="challenge_obscured"
        ) == 1
        assert snap.counter_value(
            "streaming_quality_issues_total", issue="spurious_received_change"
        ) == 1
        assert snap.counter_value(
            "streaming_attempts_total", verdict="inconclusive"
        ) == 1

    def test_conclusive_attempts_counted_by_verdict(self):
        instr = Instrumentation.enabled()
        good = ClipQuality(
            landmark_hit_fraction=1.0,
            frozen_fraction=0.0,
            transmitted_changes=2,
            received_changes=2,
        )
        verifier = _short_clip_verifier(instr, rejected=False, quality=good)
        _feed_clips(verifier, 2)
        assert instr.snapshot().counter_value(
            "streaming_attempts_total", verdict="accept"
        ) == 2

    def test_alert_counted_once(self):
        instr = Instrumentation.enabled()
        alerts = []
        good = ClipQuality(
            landmark_hit_fraction=1.0,
            frozen_fraction=0.0,
            transmitted_changes=2,
            received_changes=2,
        )
        verifier = _short_clip_verifier(
            instr, rejected=True, quality=good, on_alert=alerts.append
        )
        _feed_clips(verifier, 3)
        assert len(alerts) == 1
        assert instr.snapshot().counter_value("streaming_alerts_total") == 1
        assert instr.snapshot().counter_value(
            "streaming_attempts_total", verdict="reject"
        ) == 3
