"""obs.instrument: the one handle, enabled and disabled."""

import pickle

import pytest

from repro.obs.instrument import NULL, Instrumentation
from repro.obs.metrics import MetricsSnapshot
from repro.obs.tracing import InMemoryTraceSink


class TestDisabledHandle:
    def test_null_is_disabled(self):
        assert not NULL.is_enabled
        assert NULL.registry is None and NULL.tracer is None

    def test_ensure_normalizes_none(self):
        assert Instrumentation.ensure(None) is NULL
        enabled = Instrumentation.enabled()
        assert Instrumentation.ensure(enabled) is enabled

    def test_disabled_ops_are_noops(self):
        NULL.count("x")
        NULL.observe("y", 1.0)
        NULL.gauge("z", 2.0)
        with NULL.span("nothing", stage="simulate"):
            pass
        assert NULL.snapshot() == MetricsSnapshot()
        assert NULL.drain_spans() == []

    def test_disabled_span_is_reusable(self):
        first = NULL.span("a")
        second = NULL.span("b")
        assert first is second  # no allocation on the disabled path

    def test_disabled_handle_pickles_to_null(self):
        clone = pickle.loads(pickle.dumps(NULL))
        assert clone is NULL


class TestEnabledHandle:
    def test_enabled_builds_registry_and_tracer(self):
        instr = Instrumentation.enabled()
        assert instr.is_enabled
        instr.count("clips", verdict="accept")
        with instr.span("work", stage="verdict"):
            pass
        snap = instr.snapshot()
        assert snap.counter_value("clips", verdict="accept") == 1
        spans = instr.drain_spans()
        assert [r["name"] for r in spans] == ["work"]
        assert instr.drain_spans() == []  # drained

    def test_observe_routes_to_histogram(self):
        instr = Instrumentation.enabled()
        instr.observe("lat", 0.5, buckets=(1.0,))
        series = instr.snapshot().get("lat", kind="histogram")
        assert series.count == 1

    def test_enabled_handle_refuses_to_pickle(self):
        instr = Instrumentation.enabled()
        with pytest.raises(TypeError, match="process-local"):
            pickle.dumps(instr)

    def test_metrics_only_handle_has_null_spans(self):
        from repro.obs.metrics import MetricsRegistry

        instr = Instrumentation(registry=MetricsRegistry())
        with instr.span("ignored"):
            pass
        instr.count("ok")
        assert instr.is_enabled
        assert instr.snapshot().counter_value("ok") == 1

    def test_drain_spans_only_for_memory_sinks(self, tmp_path):
        from repro.obs.tracing import JsonlTraceSink

        with JsonlTraceSink(str(tmp_path / "t.jsonl")) as sink:
            instr = Instrumentation.enabled(sink=sink)
            with instr.span("streamed"):
                pass
            assert instr.drain_spans() == []  # already on disk, nothing to ship

    def test_worker_roundtrip_pattern(self):
        # The documented worker pattern: build enabled handle, record,
        # ship snapshot + spans home, merge.
        worker = Instrumentation.enabled()
        with worker.span("session", stage="simulate"):
            worker.count("chat_ticks_total", 150)
        payload = pickle.dumps((worker.snapshot(), worker.drain_spans()))

        snapshot, spans = pickle.loads(payload)
        parent = Instrumentation.enabled(sink=InMemoryTraceSink())
        parent.registry.merge_snapshot(snapshot)
        parent.tracer.adopt(spans)
        assert parent.snapshot().counter_value("chat_ticks_total") == 150
        assert [r["name"] for r in parent.tracer.sink.records] == ["session"]
