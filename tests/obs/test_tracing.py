"""obs.tracing: span tree, JSONL schema, adoption of worker records."""

import json

import pytest

from repro.obs.clock import ManualClock
from repro.obs.tracing import (
    PIPELINE_STAGES,
    TRACE_SCHEMA,
    InMemoryTraceSink,
    JsonlTraceSink,
    Tracer,
    read_trace,
    validate_trace_record,
)


def _tracer() -> tuple[Tracer, InMemoryTraceSink, ManualClock]:
    sink = InMemoryTraceSink()
    clock = ManualClock()
    return Tracer(sink=sink, clock=clock), sink, clock


class TestTracer:
    def test_sequential_ids_and_parenting(self):
        tracer, sink, clock = _tracer()
        with tracer.span("outer") as outer_id:
            with tracer.span("inner") as inner_id:
                clock.advance(1.0)
        assert (outer_id, inner_id) == (1, 2)
        # Children close (and emit) before their parents.
        assert [r["name"] for r in sink.records] == ["inner", "outer"]
        inner, outer = sink.records
        assert inner["parent"] == outer["span"]
        assert outer["parent"] is None

    def test_durations_come_from_the_clock(self):
        tracer, sink, clock = _tracer()
        with tracer.span("work"):
            clock.advance(2.5)
        assert sink.records[0]["duration_s"] == pytest.approx(2.5)
        assert sink.records[0]["start_s"] == pytest.approx(0.0)

    def test_stage_and_attrs_recorded(self):
        tracer, sink, _ = _tracer()
        with tracer.span("chat.session", stage="simulate", role="genuine"):
            pass
        record = sink.records[0]
        assert record["stage"] == "simulate"
        assert record["attrs"] == {"role": "genuine"}

    def test_siblings_share_parent(self):
        tracer, sink, _ = _tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r["name"]: r for r in sink.records}
        assert by_name["a"]["parent"] == by_name["b"]["parent"] == by_name["root"]["span"]

    def test_span_emitted_even_on_exception(self):
        tracer, sink, _ = _tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [r["name"] for r in sink.records] == ["doomed"]


class TestAdopt:
    def test_renumbers_into_parent_id_space(self):
        worker, worker_sink, _ = _tracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        parent, parent_sink, _ = _tracer()
        with parent.span("map"):
            pass  # consumes id 1
        parent.adopt(worker_sink.records, parent=1)
        adopted = parent_sink.records[1:]
        ids = {r["span"] for r in adopted}
        assert ids == {2, 3}
        roots = [r for r in adopted if r["name"] == "outer"]
        assert roots[0]["parent"] == 1  # re-parented under the map span
        inner = [r for r in adopted if r["name"] == "inner"][0]
        assert inner["parent"] in ids  # intra-worker edge preserved

    def test_adoption_is_deterministic(self):
        worker, worker_sink, _ = _tracer()
        with worker.span("a"):
            pass
        with worker.span("b"):
            pass
        p1, s1, _ = _tracer()
        p1.adopt(worker_sink.records)
        p2, s2, _ = _tracer()
        p2.adopt(worker_sink.records)
        assert s1.records == s2.records

    def test_adopted_records_stay_schema_valid(self):
        worker, worker_sink, _ = _tracer()
        with worker.span("w", stage="simulate"):
            pass
        parent, parent_sink, _ = _tracer()
        parent.adopt(worker_sink.records)
        for record in parent_sink.records:
            validate_trace_record(record)


class TestSchema:
    def _valid(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "span": 1,
            "parent": None,
            "name": "x",
            "stage": None,
            "start_s": 0.0,
            "duration_s": 0.1,
            "attrs": {},
        }

    def test_valid_record_passes(self):
        assert validate_trace_record(self._valid())["span"] == 1

    @pytest.mark.parametrize(
        "mutation, message",
        [
            ({"schema": "repro-trace-v0"}, "unknown trace schema"),
            ({"span": "1"}, "span id must be an integer"),
            ({"parent": "none"}, "parent must be an integer or null"),
            ({"name": ""}, "non-empty string"),
            ({"stage": 3}, "stage must be a string or null"),
            ({"duration_s": -0.5}, "non-negative"),
            ({"duration_s": "fast"}, "must be a number"),
            ({"attrs": []}, "attrs must be an object"),
        ],
    )
    def test_invalid_records_rejected(self, mutation, message):
        record = {**self._valid(), **mutation}
        with pytest.raises(ValueError, match=message):
            validate_trace_record(record)

    def test_missing_key_rejected(self):
        record = self._valid()
        del record["attrs"]
        with pytest.raises(ValueError, match="missing key"):
            validate_trace_record(record)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            validate_trace_record([1, 2])

    def test_pipeline_stage_vocabulary(self):
        assert PIPELINE_STAGES == (
            "simulate",
            "luminance",
            "preprocessing",
            "matching",
            "verdict",
        )


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        clock = ManualClock()
        with JsonlTraceSink(path) as sink:
            tracer = Tracer(sink=sink, clock=clock)
            with tracer.span("outer", stage="simulate"):
                with tracer.span("inner", stage="verdict"):
                    clock.advance(0.5)
        records = list(read_trace(path))
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["duration_s"] == pytest.approx(0.5)

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        record = {
            "schema": TRACE_SCHEMA,
            "span": 1,
            "parent": None,
            "name": "x",
            "stage": None,
            "start_s": 0.0,
            "duration_s": 0.0,
            "attrs": {},
        }
        path.write_text(json.dumps(record) + "\n\n")
        assert len(list(read_trace(str(path)))) == 1

    def test_read_reports_line_numbers(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="trace.jsonl:1"):
            list(read_trace(str(path)))

    def test_read_reports_schema_violations_with_position(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"schema": "wrong"}\n')
        with pytest.raises(ValueError, match="trace.jsonl:1.*missing key"):
            list(read_trace(str(path)))
