"""obs.export: Prometheus text format and stable JSON."""

import json

from repro.obs.export import render_json, render_prometheus
from repro.obs.metrics import MetricsRegistry


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("clips_total", verdict="accept").inc(3)
    reg.gauge("buffer_depth").set(2.5)
    h = reg.histogram("latency_seconds", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


class TestPrometheus:
    def test_type_headers_once_per_metric(self):
        reg = MetricsRegistry()
        reg.counter("v", verdict="accept").inc()
        reg.counter("v", verdict="reject").inc()
        text = render_prometheus(reg.snapshot())
        assert text.count("# TYPE v counter") == 1

    def test_counter_and_gauge_lines(self):
        text = render_prometheus(_registry().snapshot())
        assert 'clips_total{verdict="accept"} 3' in text
        assert "buffer_depth 2.5" in text

    def test_histogram_is_cumulative_with_inf(self):
        text = render_prometheus(_registry().snapshot())
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_sum 5.55" in text
        assert "latency_seconds_count 3" in text

    def test_invalid_metric_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("clips.total/all").inc()
        text = render_prometheus(reg.snapshot())
        assert "clips_total_all 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_ends_with_newline_when_nonempty(self):
        assert render_prometheus(_registry().snapshot()).endswith("\n")


class TestJson:
    def test_round_trips_and_is_sorted(self):
        text = render_json(_registry().snapshot())
        parsed = json.loads(text)
        names = [s["name"] for s in parsed["series"]]
        assert names == sorted(names)

    def test_bitwise_stable_across_touch_order(self):
        r1 = MetricsRegistry()
        r1.counter("b").inc()
        r1.counter("a").inc()
        r2 = MetricsRegistry()
        r2.counter("a").inc()
        r2.counter("b").inc()
        assert render_json(r1.snapshot()) == render_json(r2.snapshot())
