"""obs.metrics: instruments, snapshots, and the associative merge.

The merge properties here are load-bearing: ``ExecutionEngine.map``
workers return per-worker snapshots that the parent folds in submission
order, and the pool==serial identity promise only holds if that fold is
associative, commutative, and canonical-ordered.
"""

import pytest

from repro.obs.metrics import (
    DEFAULT_FRACTION_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    quantile_from_buckets,
)


class TestCounter:
    def test_int_increments_stay_int(self):
        reg = MetricsRegistry()
        c = reg.counter("clips_total")
        c.inc()
        c.inc(3)
        assert c.value == 4
        assert isinstance(c.value, int)

    def test_float_increments_allowed(self):
        reg = MetricsRegistry()
        c = reg.counter("wall_seconds")
        c.inc(0.5)
        c.inc(0.25)
        assert c.value == pytest.approx(0.75)

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            reg.counter("clips_total").inc(-1)

    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("verdicts", verdict="accept").inc(2)
        reg.counter("verdicts", verdict="reject").inc(5)
        snap = reg.snapshot()
        assert snap.counter_value("verdicts", verdict="accept") == 2
        assert snap.counter_value("verdicts", verdict="reject") == 5


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("buffer_depth")
        g.set(3)
        g.set(7)
        assert g.value == pytest.approx(7.0)


class TestRegistryContracts:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x="1") is reg.counter("a", x="1")
        assert len(reg) == 1

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="is a counter, not a gauge"):
            reg.gauge("a")

    def test_histogram_bounds_clash_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_non_creating_get(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        reg.counter("present")
        assert reg.get("present") is not None
        assert len(reg) == 1

    def test_clear_empties_but_keeps_object(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.clear()
        assert len(reg) == 0
        assert reg.snapshot() == MetricsSnapshot()


class TestHistogram:
    def test_bucket_layout(self):
        h = Histogram("h", bounds=(0.1, 1.0, 10.0))
        assert len(h.bucket_counts) == 4  # three finite + overflow

    def test_observe_routes_to_correct_bucket(self):
        h = Histogram("h", bounds=(0.1, 1.0))
        h.observe(0.05)  # <= 0.1
        h.observe(0.5)  # <= 1.0
        h.observe(2.0)  # overflow
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(2.55)

    def test_boundary_lands_in_lower_bucket(self):
        h = Histogram("h", bounds=(0.1, 1.0))
        h.observe(0.1)
        assert h.bucket_counts == [1, 0, 0]

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", bounds=())

    def test_default_bucket_constants_are_valid(self):
        Histogram("a", bounds=DEFAULT_LATENCY_BUCKETS_S)
        Histogram("b", bounds=DEFAULT_FRACTION_BUCKETS)


class TestQuantiles:
    def test_empty_histogram_is_zero(self):
        assert quantile_from_buckets((1.0, 2.0), (0, 0, 0), 0.5) == pytest.approx(0.0)

    def test_interpolates_within_bucket(self):
        # 10 observations all in the (1.0, 2.0] bucket: p50 sits mid-bucket.
        assert quantile_from_buckets((1.0, 2.0), (0, 10, 0), 0.5) == pytest.approx(1.5)

    def test_overflow_bucket_reports_top_bound(self):
        assert quantile_from_buckets((1.0, 2.0), (0, 0, 5), 0.99) == pytest.approx(2.0)

    def test_invalid_q_rejected(self):
        with pytest.raises(ValueError, match="q must lie"):
            quantile_from_buckets((1.0,), (0, 0), 1.5)

    def test_mismatched_counts_rejected(self):
        with pytest.raises(ValueError, match="len\\(bounds\\) \\+ 1"):
            quantile_from_buckets((1.0,), (0,), 0.5)


def _snapshot(*counter_values: tuple[str, int]) -> MetricsSnapshot:
    reg = MetricsRegistry()
    for name, value in counter_values:
        reg.counter(name).inc(value)
    reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
    return reg.snapshot()


class TestMergeAlgebra:
    def test_merge_is_associative(self):
        a = _snapshot(("x", 1))
        b = _snapshot(("x", 2), ("y", 5))
        c = _snapshot(("y", 7))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left == right

    def test_merge_is_commutative(self):
        a = _snapshot(("x", 1))
        b = _snapshot(("x", 2), ("y", 5))
        assert a.merge(b) == b.merge(a)

    def test_histograms_merge_bucketwise(self):
        r1 = MetricsRegistry()
        r1.histogram("h", buckets=(0.1, 1.0)).observe(0.05)
        r2 = MetricsRegistry()
        r2.histogram("h", buckets=(0.1, 1.0)).observe(0.5)
        merged = r1.snapshot().merge(r2.snapshot())
        series = merged.get("h", kind="histogram")
        assert series.bucket_counts == (1, 1, 0)
        assert series.count == 2

    def test_histogram_bounds_mismatch_raises(self):
        r1 = MetricsRegistry()
        r1.histogram("h", buckets=(0.1,)).observe(0.05)
        r2 = MetricsRegistry()
        r2.histogram("h", buckets=(0.2,)).observe(0.05)
        with pytest.raises(ValueError, match="bounds differ"):
            r1.snapshot().merge(r2.snapshot())

    def test_canonical_order_is_touch_order_independent(self):
        r1 = MetricsRegistry()
        r1.counter("b").inc()
        r1.counter("a").inc()
        r2 = MetricsRegistry()
        r2.counter("a").inc()
        r2.counter("b").inc()
        assert r1.snapshot() == r2.snapshot()

    def test_merge_snapshot_folds_into_live_registry(self):
        worker = MetricsRegistry()
        worker.counter("clips", role="genuine").inc(3)
        worker.histogram("lat", buckets=(1.0,)).observe(0.5)
        parent = MetricsRegistry()
        parent.counter("clips", role="genuine").inc(1)
        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap.counter_value("clips", role="genuine") == 4
        assert snap.get("lat", kind="histogram").count == 1
