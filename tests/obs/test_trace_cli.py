"""obs.trace_cli: the ``repro trace`` aggregation command."""

import argparse
import json

import pytest

from repro.obs.clock import ManualClock
from repro.obs.trace_cli import add_trace_arguments, run_trace
from repro.obs.tracing import JsonlTraceSink, Tracer


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser()
    add_trace_arguments(parser)
    return parser


def _write_trace(path: str) -> None:
    clock = ManualClock()
    with JsonlTraceSink(path) as sink:
        tracer = Tracer(sink=sink, clock=clock)
        with tracer.span("chat.session", stage="simulate"):
            clock.advance(2.0)
        with tracer.span("detector.verify_clip", stage="verdict"):
            clock.advance(0.05)
        with tracer.span("detector.verify_clip", stage="verdict"):
            clock.advance(0.07)
        with tracer.span("untagged.helper"):  # stage falls back to "untagged"
            clock.advance(0.01)


class TestArguments:
    def test_defaults(self):
        args = _parser().parse_args(["t.jsonl"])
        assert args.trace == "t.jsonl"
        assert args.format == "text"
        assert args.top is None

    def test_format_choices(self):
        with pytest.raises(SystemExit):
            _parser().parse_args(["t.jsonl", "--format", "xml"])


class TestRunTrace:
    def test_text_report(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path)
        assert run_trace(_parser().parse_args([path])) == 0
        out = capsys.readouterr().out
        assert "4 span(s), 3 stage(s)" in out
        assert "simulate" in out and "verdict" in out and "untagged" in out

    def test_json_report_sorted_by_total_time(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path)
        assert run_trace(_parser().parse_args([path, "--format", "json"])) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["spans"] == 4
        stages = [row["stage"] for row in report["stages"]]
        assert stages[0] == "simulate"  # largest total first
        verdict = [r for r in report["stages"] if r["stage"] == "verdict"][0]
        assert verdict["spans"] == 2
        assert verdict["total_s"] == pytest.approx(0.12)
        assert 0.0 < verdict["p50_s"] <= 0.1

    def test_top_limits_stages(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path)
        assert run_trace(_parser().parse_args([path, "--format", "json", "--top", "1"])) == 0
        report = json.loads(capsys.readouterr().out)
        assert [row["stage"] for row in report["stages"]] == ["simulate"]

    def test_prom_format_exports_histograms(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path)
        assert run_trace(_parser().parse_args([path, "--format", "prom"])) == 0
        out = capsys.readouterr().out
        assert "# TYPE trace_span_duration_seconds histogram" in out
        assert 'stage="verdict"' in out

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        code = run_trace(_parser().parse_args([str(tmp_path / "nope.jsonl")]))
        assert code == 2
        assert "repro trace:" in capsys.readouterr().out

    def test_invalid_record_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "wrong"}\n')
        assert run_trace(_parser().parse_args([str(path)])) == 2

    def test_invalid_top_is_exit_2(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path)
        assert run_trace(_parser().parse_args([path, "--top", "0"])) == 2
