"""Protocol-aware attackers: replayed schedules and stale relays."""

import pytest

from repro.attack.adaptive import AdaptiveLuminanceForger
from repro.attack.reenactment import ReenactmentAttacker
from repro.attack.replayschedule import ReplayScheduleAttacker, StaleRelayAttacker
from repro.attack.target import TargetRecording
from repro.protocol.schedule import DerivedChallenge, DerivedSchedule
from repro.vision.face_model import make_face


@pytest.fixture()
def target():
    return TargetRecording(victim=make_face("victim"), seed=50)


def observed_schedule(attempt=0):
    return DerivedSchedule(
        nonce=b"\x02" * 32,
        attempt_index=attempt,
        clip_duration_s=15.0,
        challenges=(
            DerivedChallenge(time_s=4.0, spot="dark", delta_lux=40.0),
            DerivedChallenge(time_s=10.0, spot="bright", delta_lux=50.0),
        ),
    )


class TestReplayScheduleAttacker:
    def make(self, target, **kwargs):
        defaults = dict(
            observed_schedules=[observed_schedule()],
            response_delay_s=0.4,
            start_offset_s=2.0,
            frame_size=(64, 64),
        )
        return ReplayScheduleAttacker(target=target, **{**defaults, **kwargs})

    def test_recorded_response_steps_at_the_old_schedule(self, target):
        attacker = self.make(target)
        base = attacker.ambient_lux + attacker.baseline_reflection_lux
        # Before the first recorded response: baseline reflection.
        assert attacker._illuminance(2.0, None) == pytest.approx(base)
        # After the dark-spot challenge (2.0 warmup + 4.0 + 0.4 delay)
        # the recorded reflection stepped *up* by half the delta.
        assert attacker._illuminance(6.5, None) == pytest.approx(base + 20.0)
        # After the bright-spot challenge it stepped *down*.
        assert attacker._illuminance(12.5, None) == pytest.approx(base - 25.0)

    def test_recording_ignores_the_live_screen(self, target):
        from repro.video.frame import blank_frame

        attacker = self.make(target)
        bright = attacker._illuminance(6.5, blank_frame(4, 4, value=255.0))
        dark = attacker._illuminance(6.5, blank_frame(4, 4, value=0.0))
        assert bright == pytest.approx(dark)

    def test_multiple_clips_offset_by_clip_duration(self, target):
        attacker = self.make(
            target, observed_schedules=[observed_schedule(0), observed_schedule(1)]
        )
        base = attacker.ambient_lux + attacker.baseline_reflection_lux
        # Clip 1's first challenge: 2.0 + 15.0 + 4.0 + 0.4 = 21.4.
        assert attacker._illuminance(21.0, None) == pytest.approx(base - 25.0)
        assert attacker._illuminance(21.5, None) == pytest.approx(base + 20.0)

    def test_is_a_reenactment_endpoint(self, target):
        assert isinstance(self.make(target), ReenactmentAttacker)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(response_delay_s=-0.1),
            dict(start_offset_s=-1.0),
            dict(baseline_reflection_lux=-1.0),
            dict(ambient_lux=-1.0),
        ],
    )
    def test_bad_values_rejected(self, target, kwargs):
        with pytest.raises(ValueError):
            self.make(target, **kwargs)


class TestStaleRelayAttacker:
    def test_is_the_adaptive_forger_with_a_slow_pipeline(self, target):
        attacker = StaleRelayAttacker(
            target=target, processing_delay_s=4.5, frame_size=(64, 64)
        )
        assert isinstance(attacker, AdaptiveLuminanceForger)
        assert attacker.processing_delay_s == pytest.approx(4.5)
