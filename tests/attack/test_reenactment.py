"""Reenactment attacker: the two properties the defense relies on."""

import numpy as np
import pytest

from repro.attack.reenactment import ReenactmentAttacker
from repro.attack.target import TargetRecording
from repro.video.frame import blank_frame
from repro.video.luminance import frame_mean_luminance
from repro.vision.expression import ExpressionTrack
from repro.vision.face_model import make_face
from repro.vision.landmarks import LandmarkDetector


@pytest.fixture()
def attacker():
    target = TargetRecording(victim=make_face("victim", tone="light"), seed=10)
    return ReenactmentAttacker(target=target, frame_size=(64, 64), seed=11)


class TestLuminanceDecoupling:
    def test_output_ignores_displayed_content(self, attacker):
        """The fake face reflects the *target recording's* light, never the
        attacker's screen — the paper's core insight (Sec. II-A)."""
        bright = blank_frame(8, 8, value=255.0)
        dark = blank_frame(8, 8, value=0.0)
        lum_bright = frame_mean_luminance(attacker.produce_frame(0.0, bright))
        # Fresh attacker so internal clocks match.
        target = TargetRecording(victim=make_face("victim", tone="light"), seed=10)
        attacker2 = ReenactmentAttacker(target=target, frame_size=(64, 64), seed=11)
        lum_dark = frame_mean_luminance(attacker2.produce_frame(0.0, dark))
        assert lum_bright == pytest.approx(lum_dark, rel=0.05)

    def test_output_follows_target_track(self, attacker):
        # Sample the fake video across a minute: its luminance must move
        # with the recording's illumination events.
        lums = []
        illums = []
        for i, t in enumerate(np.arange(0.0, 60.0, 0.5)):
            lums.append(frame_mean_luminance(attacker.produce_frame(t, None)))
            illums.append(attacker.target.illuminance_at(t))
        corr = np.corrcoef(lums, illums)[0, 1]
        assert corr > 0.6


class TestRealism:
    def test_fake_face_fools_landmark_detector(self, attacker):
        """Per the adversary model the fake video is visually convincing —
        the landmark API must find a face in it."""
        frame = attacker.produce_frame(1.0, None)
        assert LandmarkDetector().detect(frame.pixels) is not None

    def test_expressions_come_from_driving_track(self):
        target = TargetRecording(victim=make_face("victim"), seed=20)
        driving = ExpressionTrack(seed=77)
        attacker = ReenactmentAttacker(target=target, driving=driving, frame_size=(64, 64))
        frame = attacker.produce_frame(3.0, None)
        truth = frame.metadata["landmarks_truth"]
        pose = driving.sample(3.0)
        expected_x = pose.center_x * 64
        assert truth["nasal_bridge"][0].x == pytest.approx(expected_x, abs=2.0)

    def test_frames_flagged_fake(self, attacker):
        frame = attacker.produce_frame(0.5, None)
        assert frame.metadata["fake"] is True

    def test_artifacts_add_noise(self):
        target = TargetRecording(victim=make_face("victim"), seed=30)
        clean = ReenactmentAttacker(target=target, artifact_level=0.0, frame_size=(64, 64), seed=1)
        noisy = ReenactmentAttacker(target=target, artifact_level=0.05, frame_size=(64, 64), seed=1)
        lum_clean = [frame_mean_luminance(clean.produce_frame(t, None)) for t in np.arange(0, 2, 0.1)]
        lum_noisy = [frame_mean_luminance(noisy.produce_frame(t, None)) for t in np.arange(0, 2, 0.1)]
        assert np.std(np.diff(lum_noisy)) > np.std(np.diff(lum_clean))

    def test_negative_artifact_level_rejected(self):
        target = TargetRecording(victim=make_face("victim"), seed=1)
        with pytest.raises(ValueError):
            ReenactmentAttacker(target=target, artifact_level=-0.1)
