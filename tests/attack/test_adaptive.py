"""Adaptive luminance forger (Sec. VIII-J)."""

import numpy as np
import pytest

from repro.attack.adaptive import AdaptiveLuminanceForger
from repro.attack.target import TargetRecording
from repro.video.frame import blank_frame
from repro.video.luminance import frame_mean_luminance
from repro.vision.face_model import make_face


def _forger(delay=0.5, seed=40, ambient=50.0):
    target = TargetRecording(victim=make_face("victim"), seed=seed)
    return AdaptiveLuminanceForger(
        target=target,
        processing_delay_s=delay,
        frame_size=(64, 64),
        seed=seed,
        ambient_lux=ambient,
    )


BRIGHT = blank_frame(8, 8, value=255.0)
DARK = blank_frame(8, 8, value=5.0)


class TestForgedReflection:
    def test_zero_delay_tracks_screen_immediately(self):
        forger = _forger(delay=0.0)
        lum_dark = frame_mean_luminance(forger.produce_frame(0.0, DARK))
        lum_bright = frame_mean_luminance(forger.produce_frame(0.1, BRIGHT))
        assert lum_bright > lum_dark + 3.0

    def test_delay_postpones_the_forged_change(self):
        forger = _forger(delay=1.0)
        # Feed dark for 2 s, then switch to bright.
        lums = []
        for i in range(50):
            t = i * 0.1
            displayed = DARK if t < 2.0 else BRIGHT
            lums.append(frame_mean_luminance(forger.produce_frame(t, displayed)))
        lums = np.array(lums)
        before = lums[15:20].mean()  # right before the switch
        just_after = lums[21:29].mean()  # switch happened, delay not elapsed
        well_after = lums[35:].mean()  # forged reflection applied
        assert just_after == pytest.approx(before, abs=1.5)
        assert well_after > before + 3.0

    def test_forged_illuminance_matches_genuine_model(self):
        """With zero delay the forger reproduces exactly the reflection a
        genuine prover would show (same screen/distance model)."""
        forger = _forger(delay=0.0)
        observed = forger._observed_screen_lux(BRIGHT)
        from repro.screen.illumination import screen_illuminance

        expected = screen_illuminance(
            forger.mimic_screen.emitted_luminance(255.0),
            forger.mimic_screen.area_m2,
            forger.mimic_distance_m,
        )
        assert observed == pytest.approx(expected)


class TestValidation:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            _forger(delay=-0.5)

    def test_negative_ambient_rejected(self):
        with pytest.raises(ValueError):
            _forger(ambient=-1.0)

    def test_bad_distance_rejected(self):
        target = TargetRecording(victim=make_face("v"), seed=1)
        with pytest.raises(ValueError):
            AdaptiveLuminanceForger(target=target, mimic_distance_m=0.0)
