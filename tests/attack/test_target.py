"""Target recordings."""

import numpy as np
import pytest

from repro.attack.target import TargetRecording
from repro.vision.face_model import make_face


class TestPlayback:
    def test_loops_beyond_duration(self):
        target = TargetRecording(victim=make_face("v"), duration_s=10.0, seed=1)
        assert target.playback_time(12.5) == pytest.approx(2.5)

    def test_offset_applied(self):
        target = TargetRecording(victim=make_face("v"), duration_s=10.0, seed=1)
        assert target.playback_time(1.0, offset_s=3.0) == pytest.approx(4.0)

    def test_negative_time_rejected(self):
        target = TargetRecording(victim=make_face("v"), seed=1)
        with pytest.raises(ValueError):
            target.playback_time(-1.0)


class TestIllumination:
    def test_track_independent_of_seeded_copy(self):
        a = TargetRecording(victim=make_face("v"), seed=1)
        b = TargetRecording(victim=make_face("v"), seed=2)
        ta = [a.illuminance_at(t) for t in np.linspace(0, 60, 50)]
        tb = [b.illuminance_at(t) for t in np.linspace(0, 60, 50)]
        assert not np.allclose(ta, tb)

    def test_deterministic_per_seed(self):
        a = TargetRecording(victim=make_face("v"), seed=5)
        b = TargetRecording(victim=make_face("v"), seed=5)
        ts = np.linspace(0, 60, 50)
        assert np.allclose(
            [a.illuminance_at(t) for t in ts], [b.illuminance_at(t) for t in ts]
        )

    def test_has_its_own_luminance_events(self):
        target = TargetRecording(victim=make_face("v"), duration_s=300.0, seed=3)
        samples = np.array([target.illuminance_at(t) for t in np.linspace(0, 299, 600)])
        # Event steps make the track non-constant beyond mere drift.
        assert samples.max() - samples.min() > 10.0

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            TargetRecording(victim=make_face("v"), duration_s=0.0)
