"""Virtual camera adapter."""

import pytest

from repro.attack.virtualcam import VirtualCamera
from repro.video.frame import blank_frame


def _source_factory():
    calls = []

    def source(t, displayed):
        calls.append(t)
        return blank_frame(8, 8, value=float(len(calls)), timestamp=t)

    return source, calls


class TestPassthrough:
    def test_unlimited_rate_generates_every_frame(self):
        source, calls = _source_factory()
        cam = VirtualCamera(source)
        for i in range(5):
            cam.produce_frame(i * 0.1, None)
        assert len(calls) == 5

    def test_displayed_frame_forwarded(self):
        seen = []

        def source(t, displayed):
            seen.append(displayed)
            return blank_frame(4, 4, timestamp=t)

        cam = VirtualCamera(source)
        marker = blank_frame(2, 2, value=9.0)
        cam.produce_frame(0.0, marker)
        assert seen[0] is marker


class TestRateLimit:
    def test_slow_generator_repeats_frames(self):
        source, calls = _source_factory()
        cam = VirtualCamera(source, max_generation_hz=5.0)  # one per 0.2 s
        frames = [cam.produce_frame(i * 0.1, None) for i in range(6)]
        assert len(calls) == 3  # t = 0.0, 0.2, 0.4
        repeated = [f for f in frames if f.metadata.get("repeated")]
        assert len(repeated) == 3

    def test_repeated_frame_gets_fresh_timestamp(self):
        source, _ = _source_factory()
        cam = VirtualCamera(source, max_generation_hz=1.0)
        cam.produce_frame(0.0, None)
        repeated = cam.produce_frame(0.5, None)
        assert repeated.timestamp == pytest.approx(0.5)
        assert repeated.metadata["repeated"] is True

    def test_paper_cited_rate_admits_10hz_capture(self):
        # Face2Face runs at 47.5 Hz (Sec. II-A): faster than any capture
        # tick, so no frame is ever repeated at 10 Hz.
        source, calls = _source_factory()
        cam = VirtualCamera(source, max_generation_hz=47.5)
        for i in range(20):
            cam.produce_frame(i * 0.1, None)
        assert len(calls) == 20

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            VirtualCamera(lambda t, d: None, max_generation_hz=0.0)
