"""Replay attacker."""

import numpy as np
import pytest

from repro.attack.replay import ReplayAttacker
from repro.attack.target import TargetRecording
from repro.video.frame import blank_frame
from repro.video.luminance import frame_mean_luminance
from repro.vision.face_model import make_face


@pytest.fixture()
def target():
    return TargetRecording(victim=make_face("victim"), seed=50)


class TestReplay:
    def test_uses_victims_own_expressions(self, target):
        attacker = ReplayAttacker(target=target, frame_size=(64, 64))
        assert attacker.driving is target.expression

    def test_no_synthesis_artifacts(self, target):
        attacker = ReplayAttacker(target=target, frame_size=(64, 64))
        assert attacker.artifact_level == pytest.approx(0.0)

    def test_ignores_displayed_content(self, target):
        a = ReplayAttacker(target=target, frame_size=(64, 64))
        b = ReplayAttacker(
            target=TargetRecording(victim=make_face("victim"), seed=50),
            frame_size=(64, 64),
        )
        bright = frame_mean_luminance(a.produce_frame(0.0, blank_frame(4, 4, value=255.0)))
        dark = frame_mean_luminance(b.produce_frame(0.0, blank_frame(4, 4, value=0.0)))
        assert bright == pytest.approx(dark, rel=0.03)

    def test_playback_offset_shifts_track(self, target):
        a = ReplayAttacker(target=target, playback_offset_s=0.0, frame_size=(64, 64))
        b = ReplayAttacker(target=target, playback_offset_s=100.0, frame_size=(64, 64))
        ts = np.arange(0.0, 20.0, 0.5)
        la = [a.target.illuminance_at(t, a.playback_offset_s) for t in ts]
        lb = [b.target.illuminance_at(t, b.playback_offset_s) for t in ts]
        assert not np.allclose(la, lb)

    def test_negative_offset_rejected(self, target):
        with pytest.raises(ValueError):
            ReplayAttacker(target=target, playback_offset_s=-1.0)
