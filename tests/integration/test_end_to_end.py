"""End-to-end integration: the whole system, attacker vs defender.

These tests run full simulated chats through the full detection pipeline
— renderer, camera, screen, network, landmark detection, filter chain,
features, LOF, voting — and assert the *security outcomes* the paper
claims.
"""

import numpy as np
import pytest

from repro.core.pipeline import ChatVerifier
from repro.experiments.profiles import Environment
from repro.experiments.simulate import (
    default_user,
    simulate_adaptive_attack_session,
    simulate_attack_session,
    simulate_genuine_session,
    simulate_replay_attack_session,
)


@pytest.fixture(scope="module")
def env():
    return Environment(frame_size=(72, 72), verifier_frame_size=(48, 48))


@pytest.fixture(scope="module")
def verifier(env):
    chat_verifier = ChatVerifier()
    sessions = [
        simulate_genuine_session(duration_s=15.0, seed=900 + s, env=env)
        for s in range(10)
    ]
    return chat_verifier.enroll(sessions)


class TestSecurityOutcomes:
    def test_genuine_users_mostly_accepted(self, verifier, env):
        accepted = 0
        for seed in range(1000, 1008):
            record = simulate_genuine_session(duration_s=15.0, seed=seed, env=env)
            if not verifier.verify_session(record).is_attacker:
                accepted += 1
        assert accepted >= 6  # paper: ~92.5% single-attempt TAR

    def test_reenactment_attacks_mostly_rejected(self, verifier, env):
        rejected = 0
        for seed in range(1100, 1108):
            record = simulate_attack_session(duration_s=15.0, seed=seed, env=env)
            if verifier.verify_session(record).is_attacker:
                rejected += 1
        assert rejected >= 7  # paper: ~94.4% single-attempt TRR

    def test_replay_attacks_rejected(self, verifier, env):
        rejected = 0
        for seed in range(1200, 1205):
            record = simulate_replay_attack_session(duration_s=15.0, seed=seed, env=env)
            if verifier.verify_session(record).is_attacker:
                rejected += 1
        assert rejected >= 4

    def test_slow_adaptive_forger_rejected(self, verifier, env):
        """Fig. 17: a luminance forger with > 1.3 s processing delay
        cannot pass."""
        rejected = 0
        for seed in range(1300, 1305):
            record = simulate_adaptive_attack_session(
                processing_delay_s=2.0, duration_s=15.0, seed=seed, env=env
            )
            if verifier.verify_session(record).is_attacker:
                rejected += 1
        assert rejected >= 4

    def test_instant_adaptive_forger_passes(self, verifier, env):
        """The flip side the paper concedes: a zero-delay perfect forgery
        is indistinguishable — the defense *raises the bar*, it does not
        make attacks impossible."""
        accepted = 0
        for seed in range(1400, 1404):
            record = simulate_adaptive_attack_session(
                processing_delay_s=0.0, duration_s=15.0, seed=seed, env=env
            )
            if not verifier.verify_session(record).is_attacker:
                accepted += 1
        assert accepted >= 2


class TestCrossUserTraining:
    def test_enrollment_transfers_across_users(self, env):
        """Fig. 11's headline property: a bank trained on *other* people
        protects a brand-new user without any new enrollment."""
        from repro.experiments.profiles import make_population

        population = make_population(3, seed=77)
        verifier = ChatVerifier()
        verifier.enroll(
            [
                simulate_genuine_session(
                    duration_s=15.0, seed=2000 + s, env=env, user=population[0]
                )
                for s in range(8)
            ]
        )
        new_user = population[2]
        accepted = 0
        for seed in range(2100, 2106):
            record = simulate_genuine_session(
                duration_s=15.0, seed=seed, env=env, user=new_user
            )
            if not verifier.verify_session(record).is_attacker:
                accepted += 1
        assert accepted >= 4

        rejected = 0
        for seed in range(2200, 2206):
            record = simulate_attack_session(
                duration_s=15.0, seed=seed, env=env, victim=new_user
            )
            if verifier.verify_session(record).is_attacker:
                rejected += 1
        assert rejected >= 5


class TestEvidenceQuality:
    def test_attack_scores_separate_from_genuine(self, verifier, env):
        genuine_scores = []
        attack_scores = []
        for seed in range(1500, 1505):
            g = simulate_genuine_session(duration_s=15.0, seed=seed, env=env)
            a = simulate_attack_session(duration_s=15.0, seed=seed, env=env)
            genuine_scores.append(verifier.verify_session(g).attempts[0].lof_score)
            attack_scores.append(verifier.verify_session(a).attempts[0].lof_score)
        assert np.median(attack_scores) > 3 * np.median(genuine_scores)
