"""Codec: quantization and payload model."""

import numpy as np
import pytest

from repro.video.codec import VideoCodec
from repro.video.frame import blank_frame


class TestQuantization:
    def test_full_quality_preserves_8bit_values(self):
        codec = VideoCodec(quality=1.0)
        frame = blank_frame(8, 8, value=137.0)
        decoded = codec.decode(codec.encode(frame))
        assert np.allclose(decoded.pixels, 137.0)

    def test_low_quality_coarsens(self):
        codec = VideoCodec(quality=0.25)  # step 4
        frame = blank_frame(8, 8, value=130.0)
        decoded = codec.decode(codec.encode(frame))
        assert np.allclose(decoded.pixels % 4, 0.0)
        assert np.abs(decoded.pixels - 130.0).max() <= 2.0

    def test_out_of_range_input_clipped(self):
        codec = VideoCodec()
        frame = blank_frame(4, 4)
        frame.pixels[0, 0] = [300.0, -5.0, 100.0]
        decoded = codec.decode(codec.encode(frame))
        assert decoded.pixels.max() <= 255.0
        assert decoded.pixels.min() >= 0.0

    def test_quant_step_from_quality(self):
        assert VideoCodec(quality=1.0).quant_step == 1
        assert VideoCodec(quality=0.5).quant_step == 2
        assert VideoCodec(quality=0.1).quant_step == 10


class TestMetadataAndIds:
    def test_frame_ids_increment(self):
        codec = VideoCodec()
        a = codec.encode(blank_frame(4, 4, timestamp=0.0))
        b = codec.encode(blank_frame(4, 4, timestamp=0.1))
        assert b.frame_id == a.frame_id + 1

    def test_timestamp_preserved(self):
        codec = VideoCodec()
        encoded = codec.encode(blank_frame(4, 4, timestamp=2.5))
        assert codec.decode(encoded).timestamp == pytest.approx(2.5)

    def test_metadata_round_trip(self):
        codec = VideoCodec()
        frame = blank_frame(4, 4, timestamp=0.0)
        frame.metadata["tag"] = "x"
        assert codec.decode(codec.encode(frame)).metadata["tag"] == "x"


class TestPayloadModel:
    def test_payload_positive_and_bounded(self):
        codec = VideoCodec()
        encoded = codec.encode(blank_frame(96, 96))
        raw = 96 * 96 * 3
        assert 0 < encoded.payload_bytes < raw

    def test_lower_quality_smaller_payload(self):
        hi = VideoCodec(quality=1.0).encode(blank_frame(96, 96))
        lo = VideoCodec(quality=0.5).encode(blank_frame(96, 96))
        assert lo.payload_bytes < hi.payload_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoCodec(quality=0.0)
        with pytest.raises(ValueError):
            VideoCodec(base_compression=0.5)
