"""VideoStream: ordering, resampling, segmentation."""

import numpy as np
import pytest

from repro.video.frame import blank_frame
from repro.video.stream import VideoStream


def _stream(n=30, fps=10.0, start=0.0):
    frames = [
        blank_frame(4, 4, value=float(i), timestamp=start + i / fps) for i in range(n)
    ]
    return VideoStream(fps=fps, frames=frames)


class TestOrdering:
    def test_append_requires_increasing_timestamps(self):
        stream = VideoStream(fps=10.0)
        stream.append(blank_frame(2, 2, timestamp=0.0))
        with pytest.raises(ValueError):
            stream.append(blank_frame(2, 2, timestamp=0.0))

    def test_iteration_and_indexing(self):
        stream = _stream(5)
        assert len(stream) == 5
        assert stream[2].pixels[0, 0, 0] == pytest.approx(2.0)
        assert [f.timestamp for f in stream] == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])

    def test_duration(self):
        assert _stream(11).duration_s == pytest.approx(1.0)
        assert VideoStream(fps=10.0).duration_s == pytest.approx(0.0)


class TestResampling:
    def test_downsample_10_to_5(self):
        out = _stream(20).resampled(5.0)
        assert out.fps == pytest.approx(5.0)
        # every other frame
        values = [f.pixels[0, 0, 0] for f in out]
        assert values == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0]

    def test_resample_never_uses_future_frames(self):
        out = _stream(20).resampled(8.0)
        for frame in out:
            assert frame.metadata["source_timestamp"] <= frame.timestamp + 1e-9

    def test_resampled_grid_is_uniform(self):
        out = _stream(30).resampled(8.0)
        diffs = np.diff(out.timestamps)
        assert np.allclose(diffs, 1.0 / 8.0)

    def test_empty_stream(self):
        assert len(VideoStream(fps=10.0).resampled(5.0)) == 0

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            _stream(5).resampled(0.0)


class TestSegmentation:
    def test_equal_clips(self):
        clips = _stream(30).segments(1.0)  # 10 frames per clip
        assert len(clips) == 3
        assert all(len(c) == 10 for c in clips)

    def test_trailing_partial_dropped(self):
        clips = _stream(35).segments(1.0)
        assert len(clips) == 3

    def test_clips_are_consecutive(self):
        clips = _stream(30).segments(1.0)
        assert clips[1][0].timestamp == pytest.approx(1.0)

    def test_too_short_stream_gives_nothing(self):
        assert _stream(5).segments(1.0) == []

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            _stream(5).segments(0.0)


class TestSliceTime:
    def test_half_open_interval(self):
        sliced = _stream(30).slice_time(1.0, 2.0)
        assert len(sliced) == 10
        assert sliced[0].timestamp == pytest.approx(1.0)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            _stream(5).slice_time(2.0, 1.0)
