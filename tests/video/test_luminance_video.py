"""BT.709 luminance helpers."""

import numpy as np
import pytest

from repro.video.frame import blank_frame
from repro.video.luminance import BT709_WEIGHTS, frame_mean_luminance, pixel_luminance


class TestWeights:
    def test_weights_sum_to_one(self):
        # This is the paper's Eq. 3 with the blue-coefficient typo fixed.
        assert BT709_WEIGHTS.sum() == pytest.approx(1.0)

    def test_green_dominates(self):
        r, g, b = BT709_WEIGHTS
        assert g > r > b


class TestPixelLuminance:
    def test_white_is_255(self):
        assert pixel_luminance(np.array([255.0, 255.0, 255.0])) == pytest.approx(255.0)

    def test_pure_channels(self):
        assert pixel_luminance(np.array([255.0, 0.0, 0.0])) == pytest.approx(255 * 0.2126)
        assert pixel_luminance(np.array([0.0, 255.0, 0.0])) == pytest.approx(255 * 0.7152)
        assert pixel_luminance(np.array([0.0, 0.0, 255.0])) == pytest.approx(255 * 0.0722)

    def test_batched_shapes(self):
        img = np.zeros((4, 5, 3))
        assert pixel_luminance(img).shape == (4, 5)

    def test_rejects_non_rgb(self):
        with pytest.raises(ValueError):
            pixel_luminance(np.zeros((4, 4)))


class TestFrameMean:
    def test_uniform_frame(self):
        assert frame_mean_luminance(blank_frame(6, 6, value=80.0)) == pytest.approx(80.0)

    def test_accepts_raw_array(self):
        assert frame_mean_luminance(np.full((3, 3, 3), 10.0)) == pytest.approx(10.0)

    def test_spatial_mean(self):
        frame = blank_frame(2, 2, value=0.0)
        frame.pixels[0, 0] = [255.0, 255.0, 255.0]
        assert frame_mean_luminance(frame) == pytest.approx(255.0 / 4)
