"""Frame container."""

import numpy as np
import pytest

from repro.video.frame import Frame, blank_frame


class TestConstruction:
    def test_shape_properties(self):
        frame = blank_frame(12, 20, value=5.0)
        assert frame.height == 12
        assert frame.width == 20
        assert frame.shape == (12, 20)

    def test_pixels_coerced_to_float(self):
        frame = Frame(pixels=np.zeros((4, 4, 3), dtype=np.uint8), timestamp=0.0)
        assert frame.pixels.dtype == np.float64

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            Frame(pixels=np.zeros((4, 4)), timestamp=0.0)
        with pytest.raises(ValueError):
            Frame(pixels=np.zeros((4, 4, 4)), timestamp=0.0)

    def test_blank_frame_validation(self):
        with pytest.raises(ValueError):
            blank_frame(0, 5)


class TestOperations:
    def test_copy_is_deep(self):
        frame = blank_frame(4, 4, value=1.0)
        frame.metadata["k"] = 1
        dup = frame.copy()
        dup.pixels[0, 0, 0] = 99.0
        dup.metadata["k"] = 2
        assert frame.pixels[0, 0, 0] == pytest.approx(1.0)
        assert frame.metadata["k"] == 1

    def test_clipped(self):
        frame = blank_frame(2, 2)
        frame.pixels[0, 0] = [-5.0, 300.0, 100.0]
        clipped = frame.clipped()
        assert list(clipped.pixels[0, 0]) == [0.0, 255.0, 100.0]
        # Original untouched.
        assert frame.pixels[0, 0, 0] == pytest.approx(-5.0)

    def test_quantized_rounds(self):
        frame = blank_frame(2, 2, value=10.4)
        assert np.allclose(frame.quantized().pixels, 10.0)

    def test_mean_rgb(self):
        frame = blank_frame(2, 2)
        frame.pixels[:, :, 0] = 10.0
        frame.pixels[:, :, 1] = 20.0
        frame.pixels[:, :, 2] = 30.0
        assert list(frame.mean_rgb()) == [10.0, 20.0, 30.0]
