"""Shared fixtures for the test suite.

Simulation-backed fixtures are deliberately short (6-9 s sessions, small
rasters) and session-scoped, so the suite stays fast while still
exercising every real code path end to end.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.experiments.profiles import Environment
from repro.experiments.simulate import (
    default_user,
    simulate_attack_session,
    simulate_genuine_session,
)
from repro.vision.expression import PoseState
from repro.vision.face_model import make_face
from repro.vision.renderer import FaceRenderer


def pytest_sessionstart(session):
    session.config._repro_session_t0 = time.perf_counter()  # reprolint: disable=R002


def pytest_sessionfinish(session, exitstatus):
    """Keep the tier-1 suite fast: fail the run if it blows the budget.

    The budget is wall-clock seconds for the whole session, overridable
    via ``REPRO_TIER1_BUDGET_S`` (generous default so only a real
    regression — e.g. a test accidentally simulating full-scale datasets
    — trips it, not machine-to-machine noise).
    """
    start = getattr(session.config, "_repro_session_t0", None)
    if start is None:
        return
    budget_s = float(os.environ.get("REPRO_TIER1_BUDGET_S", "900"))
    elapsed = time.perf_counter() - start  # reprolint: disable=R002
    if elapsed > budget_s:
        session.exitstatus = 1
        print(
            f"\ntier-1 runtime budget exceeded: {elapsed:.1f}s > {budget_s:.0f}s "
            "(set REPRO_TIER1_BUDGET_S to override)"
        )


@pytest.fixture(scope="session")
def config() -> DetectorConfig:
    """The paper's configuration."""
    return DetectorConfig()


@pytest.fixture(scope="session")
def fast_env() -> Environment:
    """A small-raster environment for quick simulations."""
    return Environment(frame_size=(72, 72), verifier_frame_size=(48, 48))


@pytest.fixture(scope="session")
def genuine_record(fast_env):
    """One 15-second genuine chat session (shared, read-only)."""
    return simulate_genuine_session(duration_s=15.0, seed=404, env=fast_env)


@pytest.fixture(scope="session")
def attack_record(fast_env):
    """One 15-second reenactment-attack session (shared, read-only)."""
    return simulate_attack_session(duration_s=15.0, seed=405, env=fast_env)


@pytest.fixture(scope="session")
def step_signal() -> np.ndarray:
    """A clean two-step luminance signal at 10 Hz (15 s, steps at 4 s
    and 11 s) — the canonical 'two challenges' clip."""
    x = np.full(150, 180.0)
    x[40:] -= 50.0
    x[110:] += 50.0
    return x


@pytest.fixture(scope="session")
def reflected_signal(step_signal) -> np.ndarray:
    """The step signal as a (scaled, delayed, noisy) face reflection."""
    rng = np.random.default_rng(99)
    delayed = np.concatenate([np.full(4, step_signal[0]), step_signal[:-4]])
    return 120.0 + 0.3 * delayed + rng.normal(0.0, 0.4, delayed.size)


@pytest.fixture()
def neutral_pose() -> PoseState:
    """A centered, expressionless pose."""
    return PoseState(
        center_x=0.5, center_y=0.48, scale=0.3, roll=0.0, blink=0.0, mouth_open=0.0
    )


@pytest.fixture()
def renderer() -> FaceRenderer:
    """A small renderer over a light-skinned face."""
    face = make_face("test_face", tone="light", rng=np.random.default_rng(3))
    return FaceRenderer(face, height=72, width=72, seed=5)
