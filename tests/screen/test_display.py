"""Display photometry."""

import math

import pytest

from repro.screen.display import (
    DELL_27_LED,
    PHONE_6_OLED,
    SCREEN_SIZE_LADDER,
    ScreenSpec,
)


class TestGeometry:
    def test_27_inch_16x9_dimensions(self):
        # 27" 16:9: ~59.8 x 33.6 cm.
        assert DELL_27_LED.width_m == pytest.approx(0.598, abs=0.005)
        assert DELL_27_LED.height_m == pytest.approx(0.336, abs=0.005)

    def test_area_consistent(self):
        assert DELL_27_LED.area_m2 == pytest.approx(
            DELL_27_LED.width_m * DELL_27_LED.height_m
        )

    def test_diagonal_recovered(self):
        diag_m = math.hypot(DELL_27_LED.width_m, DELL_27_LED.height_m)
        assert diag_m == pytest.approx(27 * 0.0254, rel=1e-6)

    def test_ladder_descends_in_area(self):
        areas = [s.area_m2 for s in SCREEN_SIZE_LADDER]
        assert areas == sorted(areas, reverse=True)


class TestEmission:
    def test_white_frame_emits_peak(self):
        spec = ScreenSpec(diagonal_in=27, technology="led", brightness=1.0, black_level=0.0)
        assert spec.emitted_luminance(255.0) == pytest.approx(spec.effective_peak_nits)

    def test_black_frame_emits_black_level(self):
        spec = ScreenSpec(diagonal_in=27, technology="lcd", brightness=1.0)
        expected = spec.effective_black_level * spec.effective_peak_nits
        assert spec.emitted_luminance(0.0) == pytest.approx(expected)

    def test_oled_black_is_zero(self):
        assert PHONE_6_OLED.emitted_luminance(0.0) == pytest.approx(0.0)

    def test_emission_monotonic_in_content(self):
        values = [DELL_27_LED.emitted_luminance(v) for v in (0, 64, 128, 192, 255)]
        assert values == sorted(values)

    def test_brightness_scales_emission(self):
        dim = ScreenSpec(diagonal_in=27, brightness=0.4)
        bright = ScreenSpec(diagonal_in=27, brightness=0.8)
        assert bright.emitted_luminance(200.0) == pytest.approx(
            2 * dim.emitted_luminance(200.0)
        )

    def test_gamma_makes_midgray_darker_than_half(self):
        spec = ScreenSpec(diagonal_in=27, black_level=0.0)
        assert spec.emitted_luminance(128.0) < 0.5 * spec.emitted_luminance(255.0)

    def test_out_of_range_content_clamped(self):
        assert DELL_27_LED.emitted_luminance(300.0) == DELL_27_LED.emitted_luminance(255.0)
        assert DELL_27_LED.emitted_luminance(-5.0) == DELL_27_LED.emitted_luminance(0.0)


class TestValidation:
    def test_unknown_technology(self):
        with pytest.raises(ValueError):
            ScreenSpec(diagonal_in=27, technology="crt")

    def test_bad_brightness(self):
        with pytest.raises(ValueError):
            ScreenSpec(diagonal_in=27, brightness=1.5)

    def test_bad_diagonal(self):
        with pytest.raises(ValueError):
            ScreenSpec(diagonal_in=0)

    def test_paper_testbed_brightness(self):
        assert DELL_27_LED.brightness == 0.85
