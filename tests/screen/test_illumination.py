"""Illumination physics: screen-to-face transfer, ambient process."""

import math

import numpy as np
import pytest

from repro.screen.illumination import (
    AmbientEvent,
    AmbientLight,
    screen_illuminance,
    von_kries_reflection,
)


class TestScreenIlluminance:
    def test_inverse_square_far_field(self):
        area = 0.01
        near = screen_illuminance(100.0, area, 2.0)
        far = screen_illuminance(100.0, area, 4.0)
        assert near / far == pytest.approx(4.0, rel=0.02)

    def test_close_up_limit_is_pi_l(self):
        assert screen_illuminance(100.0, 0.2, 0.0) == pytest.approx(math.pi * 100.0)

    def test_bigger_screen_more_light(self):
        small = screen_illuminance(100.0, 0.01, 0.5)
        large = screen_illuminance(100.0, 0.2, 0.5)
        assert large > small

    def test_phone_at_arms_length_is_weak(self):
        # Sec. VIII-E: a 6" phone only works at ~10 cm.
        phone_area = 0.008
        at_10cm = screen_illuminance(300.0, phone_area, 0.1)
        at_50cm = screen_illuminance(300.0, phone_area, 0.5)
        assert at_10cm > 8 * at_50cm

    def test_validation(self):
        with pytest.raises(ValueError):
            screen_illuminance(-1.0, 0.1, 0.5)
        with pytest.raises(ValueError):
            screen_illuminance(1.0, 0.0, 0.5)
        with pytest.raises(ValueError):
            screen_illuminance(1.0, 0.1, -0.5)


class TestVonKries:
    def test_scalar_reflection(self):
        out = von_kries_reflection(100.0, np.array([0.6, 0.4, 0.3]))
        assert np.allclose(out, [60.0, 40.0, 30.0])

    def test_time_series_broadcast(self):
        illum = np.array([10.0, 20.0])
        out = von_kries_reflection(illum, np.array([0.5, 0.5, 0.5]))
        assert out.shape == (2, 3)
        assert np.allclose(out[1], 2 * out[0])

    def test_proportionality_eq2(self):
        reflectance = np.array([0.6, 0.4, 0.3])
        a = von_kries_reflection(50.0, reflectance)
        b = von_kries_reflection(150.0, reflectance)
        assert np.allclose(b / a, 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            von_kries_reflection(10.0, np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            von_kries_reflection(-1.0, np.array([0.5, 0.5, 0.5]))
        with pytest.raises(ValueError):
            von_kries_reflection(1.0, np.array([0.5, 0.5, 1.5]))


class TestAmbientEvent:
    def test_profile_rises_and_falls(self):
        event = AmbientEvent(start_s=5.0, duration_s=2.0, delta_lux=10.0)
        t = np.array([4.0, 5.05, 6.0, 7.05, 8.0])
        contribution = event.contribution(t)
        assert contribution[0] == pytest.approx(0.0)
        assert 0 < contribution[1] < 10.0
        assert contribution[2] == pytest.approx(10.0)
        assert contribution[4] == pytest.approx(0.0)


class TestAmbientLight:
    def test_constant_base(self):
        light = AmbientLight(base_lux=50.0, drift_lux=0.0)
        assert np.allclose(light.sample(np.linspace(0, 10, 5)), 50.0)

    def test_drift_bounded(self):
        light = AmbientLight(base_lux=50.0, drift_lux=3.0, rng=np.random.default_rng(0))
        samples = light.sample(np.linspace(0, 60, 600))
        assert samples.min() >= 47.0 - 1e-9
        assert samples.max() <= 53.0 + 1e-9

    def test_events_appear_at_positive_rate(self):
        light = AmbientLight(
            base_lux=50.0,
            drift_lux=0.0,
            event_rate_hz=0.5,
            rng=np.random.default_rng(1),
        )
        light.sample(np.linspace(0, 100, 10))
        assert len(light.events) > 10

    def test_events_require_rng(self):
        with pytest.raises(ValueError):
            AmbientLight(event_rate_hz=0.1)

    def test_never_negative(self):
        light = AmbientLight(
            base_lux=5.0,
            drift_lux=0.0,
            event_rate_hz=1.0,
            event_lux_range=(20.0, 40.0),
            rng=np.random.default_rng(2),
        )
        samples = light.sample(np.linspace(0, 60, 600))
        assert samples.min() >= 0.0

    def test_event_horizon_extends_lazily(self):
        light = AmbientLight(
            base_lux=50.0, event_rate_hz=0.5, rng=np.random.default_rng(3)
        )
        light.sample_scalar(10.0)
        early = len(light.events)
        light.sample_scalar(100.0)
        assert len(light.events) > early

    def test_deterministic_given_seed(self):
        def build():
            return AmbientLight(
                base_lux=50.0, event_rate_hz=0.3, rng=np.random.default_rng(9)
            )

        t = np.linspace(0, 50, 100)
        assert np.allclose(build().sample(t), build().sample(t))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            AmbientLight().sample(-1.0)
