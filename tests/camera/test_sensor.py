"""Image sensor: exposure scaling, gamma, noise, clipping."""

import numpy as np
import pytest

from repro.camera.sensor import ImageSensor


def _radiance(value, shape=(8, 8, 3)):
    return np.full(shape, float(value))


class TestNoiselessPath:
    def test_full_scale_maps_to_255(self):
        sensor = ImageSensor(rng=None)
        out = sensor.expose(_radiance(100.0), exposure=0.01)
        assert np.allclose(out, 255.0)

    def test_gamma_encoding(self):
        sensor = ImageSensor(gamma=2.2, rng=None)
        out = sensor.expose(_radiance(50.0), exposure=0.01)  # linear 0.5
        assert np.allclose(out, 255.0 * 0.5 ** (1 / 2.2))

    def test_clips_above_full_scale(self):
        sensor = ImageSensor(rng=None)
        out = sensor.expose(_radiance(1000.0), exposure=0.01)
        assert np.allclose(out, 255.0)

    def test_zero_radiance_is_black(self):
        sensor = ImageSensor(rng=None)
        assert np.allclose(sensor.expose(_radiance(0.0), 1.0), 0.0)

    def test_exposure_scales_linear_signal(self):
        sensor = ImageSensor(gamma=1.0, rng=None)
        half = sensor.expose(_radiance(50.0), exposure=0.005)
        full = sensor.expose(_radiance(50.0), exposure=0.01)
        assert np.allclose(full, 2 * half)


class TestNoise:
    def test_noise_has_expected_scale(self):
        sensor = ImageSensor(read_noise=1.0, shot_noise_scale=0.0, rng=np.random.default_rng(0))
        out = sensor.expose(_radiance(25.0, (100, 100, 3)), exposure=0.01)
        clean = ImageSensor(rng=None).expose(_radiance(25.0, (100, 100, 3)), exposure=0.01)
        residual = out - clean
        assert residual.std() == pytest.approx(1.0, rel=0.1)

    def test_shot_noise_grows_with_signal(self):
        rng = np.random.default_rng(1)
        sensor = ImageSensor(read_noise=0.0, shot_noise_scale=2.0, rng=rng)
        dim = sensor.expose(_radiance(5.0, (80, 80, 3)), exposure=0.002)
        bright = sensor.expose(_radiance(60.0, (80, 80, 3)), exposure=0.002)
        clean_dim = ImageSensor(rng=None).expose(_radiance(5.0, (80, 80, 3)), 0.002)
        clean_bright = ImageSensor(rng=None).expose(_radiance(60.0, (80, 80, 3)), 0.002)
        assert (bright - clean_bright).std() > (dim - clean_dim).std()

    def test_output_stays_in_range_despite_noise(self):
        sensor = ImageSensor(read_noise=5.0, rng=np.random.default_rng(2))
        out = sensor.expose(_radiance(100.0, (50, 50, 3)), exposure=0.01)
        assert out.min() >= 0.0
        assert out.max() <= 255.0

    def test_deterministic_given_rng(self):
        a = ImageSensor(rng=np.random.default_rng(7)).expose(_radiance(30.0), 0.01)
        b = ImageSensor(rng=np.random.default_rng(7)).expose(_radiance(30.0), 0.01)
        assert np.array_equal(a, b)


class TestValidation:
    def test_rejects_bad_exposure(self):
        with pytest.raises(ValueError):
            ImageSensor(rng=None).expose(_radiance(1.0), 0.0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            ImageSensor(rng=None).expose(np.zeros((4, 4)), 1.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            ImageSensor(read_noise=-1.0)
