"""The composed camera."""

import numpy as np
import pytest

from repro.camera.camera import Camera
from repro.camera.exposure import AutoExposureController
from repro.camera.metering import LightMeter, MeteringMode
from repro.camera.sensor import ImageSensor


def _camera(**kwargs):
    defaults = dict(
        sensor=ImageSensor(rng=None),
        meter=LightMeter(mode=MeteringMode.MULTI_ZONE),
        auto_exposure=AutoExposureController(target_level=0.3),
    )
    defaults.update(kwargs)
    return Camera(**defaults)


class TestCapture:
    def test_frame_carries_timestamp_and_metadata(self):
        camera = _camera()
        frame = camera.capture(np.full((16, 16, 3), 50.0), timestamp=1.0)
        assert frame.timestamp == pytest.approx(1.0)
        assert "exposure" in frame.metadata
        assert "metered_level" in frame.metadata

    def test_auto_exposure_reaches_target(self):
        camera = _camera()
        radiance = np.full((16, 16, 3), 50.0)
        frame = None
        for i in range(30):
            frame = camera.capture(radiance, timestamp=i * 0.1)
        # Metered level times exposure should be the 0.3 target -> mean
        # pixel = 255 * 0.3**(1/2.2).
        expected = 255.0 * 0.3 ** (1 / 2.2)
        assert frame.pixels.mean() == pytest.approx(expected, rel=0.02)

    def test_exposure_adapts_to_scene_change(self):
        camera = _camera()
        for i in range(20):
            camera.capture(np.full((16, 16, 3), 50.0), timestamp=i * 0.1)
        exposure_before = camera.auto_exposure.exposure
        for i in range(20, 60):
            camera.capture(np.full((16, 16, 3), 200.0), timestamp=i * 0.1)
        assert camera.auto_exposure.exposure < exposure_before

    def test_extra_metadata_merged(self):
        camera = _camera()
        frame = camera.capture(
            np.full((8, 8, 3), 10.0), timestamp=0.5, metadata={"tag": 7}
        )
        assert frame.metadata["tag"] == 7


class TestClock:
    def test_timestamps_must_increase(self):
        camera = _camera()
        camera.capture(np.full((8, 8, 3), 10.0), timestamp=1.0)
        with pytest.raises(ValueError):
            camera.capture(np.full((8, 8, 3), 10.0), timestamp=1.0)

    def test_reset_clock_allows_restart(self):
        camera = _camera()
        camera.capture(np.full((8, 8, 3), 10.0), timestamp=5.0)
        camera.reset_clock()
        frame = camera.capture(np.full((8, 8, 3), 10.0), timestamp=0.0)
        assert frame.timestamp == pytest.approx(0.0)

    def test_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            Camera(fps=0.0)
