"""Auto-exposure loop dynamics."""

import pytest

from repro.camera.exposure import AutoExposureController


class TestConvergence:
    def test_first_update_snaps_to_ideal(self):
        ae = AutoExposureController(target_level=0.2)
        exposure = ae.update(measured_level=2.0, dt=0.1)
        assert exposure == pytest.approx(0.1)

    def test_converges_toward_new_ideal(self):
        ae = AutoExposureController(target_level=0.2, time_constant_s=0.3)
        ae.update(2.0, 0.1)  # exposure 0.1
        for _ in range(50):
            exposure = ae.update(8.0, 0.1)  # ideal now 0.025
        assert exposure == pytest.approx(0.025, rel=0.01)

    def test_convergence_is_gradual(self):
        ae = AutoExposureController(target_level=0.2, time_constant_s=0.5)
        ae.update(2.0, 0.1)
        one_step = ae.update(8.0, 0.1)
        assert 0.025 < one_step < 0.1

    def test_time_constant_controls_speed(self):
        fast = AutoExposureController(target_level=0.2, time_constant_s=0.1)
        slow = AutoExposureController(target_level=0.2, time_constant_s=2.0)
        for ae in (fast, slow):
            ae.update(2.0, 0.1)
        fast_val = fast.update(8.0, 0.1)
        slow_val = slow.update(8.0, 0.1)
        assert abs(fast_val - 0.025) < abs(slow_val - 0.025)


class TestLocking:
    def test_locked_exposure_frozen(self):
        ae = AutoExposureController(target_level=0.2)
        ae.update(2.0, 0.1)
        ae.lock()
        assert ae.update(100.0, 0.1) == pytest.approx(0.1)

    def test_unlock_resumes(self):
        ae = AutoExposureController(target_level=0.2, time_constant_s=0.05)
        ae.update(2.0, 0.1)
        ae.lock()
        ae.unlock()
        for _ in range(40):
            value = ae.update(8.0, 0.1)
        assert value == pytest.approx(0.025, rel=0.01)

    def test_lock_before_update_raises(self):
        with pytest.raises(RuntimeError):
            AutoExposureController().lock()


class TestBoundsAndValidation:
    def test_exposure_clamped(self):
        ae = AutoExposureController(target_level=0.2, max_exposure=0.05)
        assert ae.update(0.001, 0.1) == pytest.approx(0.05)

    def test_exposure_property_before_update_raises(self):
        with pytest.raises(RuntimeError):
            AutoExposureController().exposure

    def test_zero_measured_level_bounded(self):
        ae = AutoExposureController(max_exposure=100.0)
        assert ae.update(0.0, 0.1) == pytest.approx(100.0)

    def test_negative_inputs_rejected(self):
        ae = AutoExposureController()
        with pytest.raises(ValueError):
            ae.update(-1.0, 0.1)
        with pytest.raises(ValueError):
            ae.update(1.0, -0.1)

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            AutoExposureController(target_level=0.0)
        with pytest.raises(ValueError):
            AutoExposureController(min_exposure=2.0, max_exposure=1.0)
