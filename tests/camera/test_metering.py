"""Light metering modes."""

import numpy as np
import pytest

from repro.camera.metering import LightMeter, MeteringMode


def _scene(width=60, height=40):
    """Left half dark (10), right half bright (200)."""
    radiance = np.full((height, width, 3), 10.0)
    radiance[:, width // 2 :, :] = 200.0
    return radiance


class TestSpotMetering:
    def test_spot_on_dark_zone(self):
        meter = LightMeter(mode=MeteringMode.SPOT, spot_x=0.2, spot_y=0.5)
        assert meter.measure(_scene()) == pytest.approx(10.0)

    def test_spot_on_bright_zone(self):
        meter = LightMeter(mode=MeteringMode.SPOT, spot_x=0.8, spot_y=0.5)
        assert meter.measure(_scene()) == pytest.approx(200.0)

    def test_point_spot_switches_mode_and_position(self):
        meter = LightMeter(mode=MeteringMode.MULTI_ZONE)
        meter.point_spot(0.8, 0.5)
        assert meter.mode is MeteringMode.SPOT
        assert meter.measure(_scene()) == pytest.approx(200.0)

    def test_spot_at_edge_stays_in_frame(self):
        meter = LightMeter(mode=MeteringMode.SPOT, spot_x=1.0, spot_y=1.0)
        assert np.isfinite(meter.measure(_scene()))

    def test_point_spot_validates(self):
        with pytest.raises(ValueError):
            LightMeter().point_spot(1.5, 0.5)


class TestMultiZone:
    def test_uniform_scene(self):
        meter = LightMeter(mode=MeteringMode.MULTI_ZONE)
        assert meter.measure(np.full((30, 30, 3), 50.0)) == pytest.approx(50.0)

    def test_center_weighting(self):
        # Bright center, dark surround: center weight pulls the measure up.
        radiance = np.full((30, 30, 3), 10.0)
        radiance[10:20, 10:20, :] = 100.0
        weighted = LightMeter(mode=MeteringMode.MULTI_ZONE, center_weight=4.0).measure(radiance)
        flat = LightMeter(mode=MeteringMode.MULTI_ZONE, center_weight=1.0).measure(radiance)
        assert weighted > flat

    def test_between_extremes(self):
        meter = LightMeter(mode=MeteringMode.MULTI_ZONE)
        value = meter.measure(_scene())
        assert 10.0 < value < 200.0


class TestValidation:
    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            LightMeter().measure(np.zeros((10, 10)))

    def test_rejects_bad_spot(self):
        with pytest.raises(ValueError):
            LightMeter(spot_x=2.0)

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            LightMeter(grid=(0, 3))
