"""Summary-cache behavior when only a callee's *async* summary changes.

The concurrency rules read per-function ``AsyncInfo`` out of the same
content-hash-cached module summaries R007-R011 use.  These tests pin
the load-bearing property: editing one module re-summarizes exactly
that module (counted via ``reprograph_summaries_total``), and a graph
assembled from one fresh and N cached summaries reaches the same
R012-R016 verdicts as a cold run — cached callers must compose with a
callee whose suspension behavior just changed.
"""

from repro.analysis.graph import SummaryCache
from repro.obs.metrics import MetricsRegistry

from .test_graph import graph_lint, write_tree

FILES = {
    "waits.py": """
        async def drain(q):
            return await q.get(5.0)
        """,
    "driver.py": """
        from waits import drain

        def main(sched, q):
            return sched.run(drain(q))
        """,
}


def counts(registry):
    snapshot = registry.snapshot()
    return (
        snapshot.counter_value("reprograph_summaries_total", result="hit"),
        snapshot.counter_value("reprograph_summaries_total", result="miss"),
    )


def r015(result):
    return sorted(
        (f.path, f.line, f.message) for f in result.findings if f.rule == "R015"
    )


class TestAsyncSummaryInvalidation:
    def test_callee_edit_re_summarizes_only_the_callee(self, tmp_path):
        write_tree(tmp_path, FILES)
        cache_file = tmp_path / "cache" / "summaries.json"

        cold = MetricsRegistry()
        graph_lint(tmp_path, cache=SummaryCache(cache_file), metrics=cold)
        assert counts(cold) == (0.0, 2.0)

        # Drop the timeout: only drain's async summary changes.
        (tmp_path / "waits.py").write_text(
            "async def drain(q):\n    return await q.get()\n"
        )
        warm = MetricsRegistry()
        graph_lint(tmp_path, cache=SummaryCache(cache_file), metrics=warm)
        assert counts(warm) == (1.0, 1.0)

    def test_cached_caller_sees_the_callee_change(self, tmp_path):
        """The unguarded run lives in driver.py (cached); the wait that
        just lost its timeout lives in waits.py (fresh).  R015's second
        half needs both, so a stale async summary would hide it."""
        write_tree(tmp_path, FILES)
        cache_file = tmp_path / "cache" / "summaries.json"

        before = graph_lint(tmp_path, cache=SummaryCache(cache_file))
        assert not any("awaits get()" in m for _p, _l, m in r015(before))

        (tmp_path / "waits.py").write_text(
            "async def drain(q):\n    return await q.get()\n"
        )
        cached = graph_lint(tmp_path, cache=SummaryCache(cache_file))
        cold = graph_lint(tmp_path, cache=SummaryCache(tmp_path / "cold.json"))
        assert any("awaits get()" in m for _p, _l, m in r015(cached))
        assert r015(cached) == r015(cold)

    def test_async_summary_roundtrips_through_the_cache(self, tmp_path):
        write_tree(tmp_path, FILES)
        cache_file = tmp_path / "cache" / "summaries.json"
        fresh = graph_lint(tmp_path, cache=SummaryCache(cache_file))
        warm = graph_lint(tmp_path, cache=SummaryCache(cache_file))
        for module in ("waits", "driver"):
            fresh_fns = fresh.graph.modules[module].functions
            warm_fns = warm.graph.modules[module].functions
            assert {q: f.async_info for q, f in fresh_fns.items()} == {
                q: f.async_info for q, f in warm_fns.items()
            }
