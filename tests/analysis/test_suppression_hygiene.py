"""Suppression hygiene: W001 (stale) and W002 (unknown id) findings.

A ``# reprolint: disable=`` comment is a standing claim that a rule
would fire here.  When the code drifts and the rule no longer fires,
the comment silently disables future *real* findings on that line — so
an unused suppression is itself reported (W001), and one naming a rule
id that does not exist is reported as a typo (W002).  Suppressions for
rules that did not run this invocation (graph rules under --no-graph,
async rules under --no-async) are never judged: absence of evidence is
not staleness.
"""

import textwrap

from repro.analysis import LintConfig, lint_paths
from repro.analysis.rulebase import rule_category


def lint_tree(tmp_path, files, **kwargs):
    for name, source in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    kwargs.setdefault("graph", True)
    return lint_paths([tmp_path], relative_to=tmp_path, **kwargs)


def by_rule(result, rule_id):
    return [f for f in result.findings if f.rule == rule_id]


class TestW001UnusedSuppression:
    def test_stale_suppression_is_flagged(self, tmp_path):
        result = lint_tree(
            tmp_path, {"m.py": "x = 1  # reprolint: disable=R001\n"}
        )
        (finding,) = by_rule(result, "W001")
        assert finding.path == "m.py"
        assert finding.line == 1
        assert "R001" in finding.message
        assert "silences nothing" in finding.message

    def test_live_suppression_is_not_flagged(self, tmp_path):
        files = {
            "m.py": """
                import numpy as np

                def noisy():
                    return np.random.rand()  # reprolint: disable=R001
                """
        }
        result = lint_tree(tmp_path, files)
        assert by_rule(result, "R001") == []
        assert by_rule(result, "W001") == []

    def test_unused_wildcard_is_flagged(self, tmp_path):
        result = lint_tree(
            tmp_path, {"m.py": "x = 1  # reprolint: disable=all\n"}
        )
        (finding,) = by_rule(result, "W001")
        assert "'all'" in finding.message

    def test_suppression_text_inside_a_string_is_ignored(self, tmp_path):
        # Test fixtures in this repo embed lint-fixture source in string
        # literals; those must not register as (stale) suppressions.
        files = {
            "m.py": '''
                FIXTURE = """
                import numpy as np
                def f():
                    return np.random.rand()  # reprolint: disable=R001
                """
                '''
        }
        result = lint_tree(tmp_path, files)
        assert by_rule(result, "W001") == []

    def test_graph_rule_suppression_not_judged_without_graph(self, tmp_path):
        files = {"m.py": "x = 1  # reprolint: disable=R007\n"}
        ungraphed = lint_tree(tmp_path, files, graph=False)
        assert by_rule(ungraphed, "W001") == []
        graphed = lint_tree(tmp_path, files, graph=True)
        assert len(by_rule(graphed, "W001")) == 1

    def test_async_suppression_not_judged_under_no_async(self, tmp_path):
        files = {"m.py": "x = 1  # reprolint: disable=R015\n"}
        off = lint_tree(tmp_path, files, async_rules=False)
        assert by_rule(off, "W001") == []
        on = lint_tree(tmp_path, files, async_rules=True)
        assert len(by_rule(on, "W001")) == 1

    def test_graph_rule_use_marks_the_suppression_live(self, tmp_path):
        files = {
            "util.py": "from random import random as draw\n",
            "payload.py": """
                from util import draw

                def task(p):
                    return draw()

                def build(engine, tasks):
                    return engine.map(task, tasks)  # reprolint: disable=R007
                """,
        }
        result = lint_tree(tmp_path, files)
        assert by_rule(result, "R007") == []
        assert by_rule(result, "W001") == []


class TestW002UnknownRuleId:
    def test_unknown_id_in_comment(self, tmp_path):
        result = lint_tree(
            tmp_path, {"m.py": "x = 1  # reprolint: disable=R999\n"}
        )
        (finding,) = by_rule(result, "W002")
        assert "R999" in finding.message
        assert by_rule(result, "W001") == []  # not double-reported

    def test_unknown_id_in_config(self, tmp_path):
        config = LintConfig(rule_options=(("R888", (("opt", ("v",)),)),))
        result = lint_tree(tmp_path, {"m.py": "x = 1\n"}, config=config)
        (finding,) = by_rule(result, "W002")
        assert finding.path == "pyproject.toml"
        assert "R888" in finding.message

    def test_known_config_ids_are_quiet(self, tmp_path):
        config = LintConfig(
            rule_options=(("R012", (("primitive-allowlist", ("x.y",)),)),)
        )
        result = lint_tree(tmp_path, {"m.py": "x = 1\n"}, config=config)
        assert by_rule(result, "W002") == []


class TestCategories:
    def test_meta_and_error_categories(self):
        assert rule_category("W001") == "meta"
        assert rule_category("W002") == "meta"
        assert rule_category("E000") == "error"
        assert rule_category("R001") == "per-file"
        assert rule_category("R007") == "whole-program"
        assert rule_category("R014") == "concurrency"
