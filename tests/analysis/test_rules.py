"""Each reprolint rule: one fixture that triggers it exactly once,
plus the nearest non-violation it must stay silent on."""

import textwrap

import pytest

from repro.analysis import analyze_source
from repro.analysis.rules import CONFIG_FIELDS

# One (rule id, offending snippet) pair per rule.  The CLI test reuses
# this table to assert a nonzero exit per rule.
RULE_FIXTURES = {
    "R001": """
        import numpy as np

        def sample():
            return np.random.rand(3)
        """,
    "R002": """
        import time

        def stamp():
            return time.time()
        """,
    "R003": """
        def run(engine, tasks):
            return engine.map(lambda t: t + 1, tasks)
        """,
    "R004": """
        def grade(coverage):
            return coverage == 1.0
        """,
    "R005": """
        def collect(item, bucket=[]):
            bucket.append(item)
            return bucket
        """,
    "R006": """
        def sweep(config):
            return config.with_overrides(lof_treshold=2.0)
        """,
}


def findings_for(source, path="fixture.py"):
    return analyze_source(textwrap.dedent(source), path=path)


class TestEachRuleFiresExactlyOnce:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_fixture_triggers_rule_once(self, rule_id):
        findings = findings_for(RULE_FIXTURES[rule_id])
        assert [f.rule for f in findings] == [rule_id]

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_finding_carries_location_and_snippet(self, rule_id):
        (finding,) = findings_for(RULE_FIXTURES[rule_id])
        assert finding.path == "fixture.py"
        assert finding.line > 0 and finding.col > 0
        assert finding.snippet
        assert finding.fingerprint


class TestR001UnseededRandomness:
    def test_default_rng_is_allowed(self):
        assert not findings_for(
            """
            import numpy as np

            def sample(seed):
                return np.random.default_rng(seed).uniform()
            """
        )

    def test_seed_sequence_is_allowed(self):
        assert not findings_for(
            """
            import numpy as np

            def spawn(seed):
                return np.random.SeedSequence(seed).spawn(4)
            """
        )

    def test_numpy_alias_is_resolved(self):
        findings = findings_for(
            """
            import numpy

            def sample():
                return numpy.random.normal()
            """
        )
        assert [f.rule for f in findings] == ["R001"]

    def test_stdlib_random_from_import(self):
        findings = findings_for(
            """
            from random import choice

            def pick(xs):
                return choice(xs)
            """
        )
        assert [f.rule for f in findings] == ["R001"]

    def test_generator_methods_not_confused_with_module(self):
        assert not findings_for(
            """
            def draw(rng):
                return rng.random()
            """
        )


class TestR002WallClock:
    def test_engine_perf_is_the_blessed_site(self):
        source = """
            import time

            def stamp():
                return time.perf_counter()
            """
        assert findings_for(source, path="src/repro/other.py")
        assert not findings_for(source, path="src/repro/engine/perf.py")

    def test_datetime_now_flagged(self):
        findings = findings_for(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        )
        assert [f.rule for f in findings] == ["R002"]

    def test_obs_clock_is_the_other_blessed_site(self):
        source = """
            import time

            def now():
                return time.perf_counter()
            """
        assert not findings_for(source, path="src/repro/obs/clock.py")

    def test_rest_of_obs_is_not_blessed(self):
        # The allowlist names obs/clock.py alone, not obs/ wholesale:
        # every other obs module must go through the Clock abstraction.
        source = """
            import time

            def sneak():
                return time.monotonic()
            """
        findings = findings_for(source, path="src/repro/obs/metrics.py")
        assert [f.rule for f in findings] == ["R002"]
        assert "obs.clock" in findings[0].message


class TestR003UnpicklablePayload:
    def test_nested_def_flagged(self):
        findings = findings_for(
            """
            def run(engine, tasks):
                def work(task):
                    return task
                return engine.map(work, tasks)
            """
        )
        assert [f.rule for f in findings] == ["R003"]

    def test_module_level_function_ok(self):
        assert not findings_for(
            """
            def work(task):
                return task

            def run(engine, tasks):
                return engine.map(work, tasks)
            """
        )

    def test_non_engine_map_ignored(self):
        assert not findings_for(
            """
            def shift(values):
                return values.map(lambda v: v + 1)
            """
        )


class TestR004FloatEquality:
    def test_test_files_only_flag_computed_asserts(self):
        source = """
            from repro.core.config import PAPER_CONFIG

            def test_default():
                assert PAPER_CONFIG.sample_rate_hz == 10.0
            """
        assert not findings_for(source, path="test_fixture.py")

    def test_call_result_assert_flagged_in_tests(self):
        findings = findings_for(
            """
            def test_features(build):
                fx = build()
                assert fx.z1 == 1.0
            """,
            path="test_fixture.py",
        )
        assert [f.rule for f in findings] == ["R004"]

    def test_pytest_approx_is_the_fix(self):
        assert not findings_for(
            """
            import pytest

            def test_features(build):
                fx = build()
                assert fx.z1 == pytest.approx(1.0)
            """,
            path="test_fixture.py",
        )

    def test_integer_equality_untouched(self):
        assert not findings_for(
            """
            def count(xs):
                return len(xs) == 3
            """
        )


class TestR005MutableDefault:
    def test_dataclass_field_default(self):
        findings = findings_for(
            """
            import dataclasses

            @dataclasses.dataclass
            class Bucket:
                items: list = dataclasses.field(default=[])
            """
        )
        assert [f.rule for f in findings] == ["R005"]

    def test_default_factory_ok(self):
        assert not findings_for(
            """
            import dataclasses

            @dataclasses.dataclass
            class Bucket:
                items: list = dataclasses.field(default_factory=list)
            """
        )

    def test_none_default_ok(self):
        assert not findings_for(
            """
            def collect(item, bucket=None):
                bucket = bucket or []
                bucket.append(item)
                return bucket
            """
        )


class TestR006ConfigContract:
    def test_known_fields_pass(self):
        assert "lof_threshold" in CONFIG_FIELDS
        assert not findings_for(
            """
            def sweep(config):
                return config.with_overrides(lof_threshold=2.0)
            """
        )

    def test_deprecated_replace_with_config_fields(self):
        findings = findings_for(
            """
            def sweep(config):
                return config.replace(lof_threshold=2.0)
            """
        )
        assert [f.rule for f in findings] == ["R006"]
        assert "with_overrides" in findings[0].message

    def test_str_replace_not_confused(self):
        assert not findings_for(
            """
            def clean(name):
                return name.replace("a", "b")
            """
        )

    def test_dataclasses_replace_on_other_types_ok(self):
        assert not findings_for(
            """
            import dataclasses

            def tweak(env):
                return dataclasses.replace(env, fps=30.0)
            """
        )

    def test_getattr_string_typo_flagged(self):
        findings = findings_for(
            """
            def read(config):
                return getattr(config, "lof_treshold")
            """
        )
        assert [f.rule for f in findings] == ["R006"]

    def test_star_star_dict_keys_checked(self):
        findings = findings_for(
            """
            def sweep(config):
                return config.with_overrides(**{"lof_treshold": 2.0})
            """
        )
        assert [f.rule for f in findings] == ["R006"]
