"""Summary-cache behavior when only a callee's *taint* summary changes.

R017-R021 read per-function ``TaintInfo`` out of the same content-hash
cached module summaries every other graph rule uses.  The load-bearing
properties: a cached caller composes with a callee whose return just
became secret-bearing, and a cache written by a pre-taint summarizer
(older ``SUMMARY_VERSION``) is discarded wholesale rather than served
with empty taint records.
"""

import json

from repro.analysis.graph import SummaryCache
from repro.analysis.graph.summarize import SUMMARY_VERSION
from repro.obs.metrics import MetricsRegistry

from .test_graph import graph_lint, write_tree

FILES = {
    "keys.py": """
        def issue(vault):
            return vault.label
        """,
    "report.py": """
        from keys import issue

        def banner(vault):
            print(f"issued {issue(vault)}")
        """,
}

#: The same callee after an edit that makes its return secret-bearing.
LEAKY_CALLEE = "def issue(vault):\n    secret = vault.secret\n    return secret\n"


def counts(registry):
    snapshot = registry.snapshot()
    return (
        snapshot.counter_value("reprograph_summaries_total", result="hit"),
        snapshot.counter_value("reprograph_summaries_total", result="miss"),
    )


def r017(result):
    return sorted(
        (f.path, f.line, f.evidence)
        for f in result.findings
        if f.rule == "R017"
    )


class TestTaintSummaryInvalidation:
    def test_callee_edit_re_summarizes_only_the_callee(self, tmp_path):
        write_tree(tmp_path, FILES)
        cache_file = tmp_path / "cache" / "summaries.json"

        cold = MetricsRegistry()
        graph_lint(tmp_path, cache=SummaryCache(cache_file), metrics=cold)
        assert counts(cold) == (0.0, 2.0)

        (tmp_path / "keys.py").write_text(LEAKY_CALLEE)
        warm = MetricsRegistry()
        graph_lint(tmp_path, cache=SummaryCache(cache_file), metrics=warm)
        assert counts(warm) == (1.0, 1.0)

    def test_cached_caller_sees_the_callee_change(self, tmp_path):
        """The sink lives in report.py (cached); the return that just
        became secret lives in keys.py (fresh).  R017 needs both, so a
        stale taint summary would hide the leak."""
        write_tree(tmp_path, FILES)
        cache_file = tmp_path / "cache" / "summaries.json"

        before = graph_lint(tmp_path, cache=SummaryCache(cache_file))
        assert r017(before) == []

        (tmp_path / "keys.py").write_text(LEAKY_CALLEE)
        cached = graph_lint(tmp_path, cache=SummaryCache(cache_file))
        fresh = graph_lint(tmp_path, cache=SummaryCache(tmp_path / "cold.json"))
        assert r017(cached) and r017(cached) == r017(fresh)

    def test_taint_summary_roundtrips_through_the_cache(self, tmp_path):
        write_tree(tmp_path, FILES)
        cache_file = tmp_path / "cache" / "summaries.json"
        fresh = graph_lint(tmp_path, cache=SummaryCache(cache_file))
        warm = graph_lint(tmp_path, cache=SummaryCache(cache_file))
        for module in ("keys", "report"):
            fresh_fns = fresh.graph.modules[module].functions
            warm_fns = warm.graph.modules[module].functions
            assert {q: f.taint_info for q, f in fresh_fns.items()} == {
                q: f.taint_info for q, f in warm_fns.items()
            }

    def test_pre_taint_cache_is_discarded_by_version(self, tmp_path):
        """A cache written before taint collection existed carries no
        TaintInfo; serving it would silently blind R017-R021.  The
        summary-version stamp forces a full re-summarize instead."""
        write_tree(tmp_path, {"keys.py": LEAKY_CALLEE, "report.py": FILES["report.py"]})
        cache_file = tmp_path / "cache" / "summaries.json"
        graph_lint(tmp_path, cache=SummaryCache(cache_file))

        document = json.loads(cache_file.read_text())
        document["summary_version"] = SUMMARY_VERSION - 1
        cache_file.write_text(json.dumps(document))

        stale = MetricsRegistry()
        result = graph_lint(
            tmp_path, cache=SummaryCache(cache_file), metrics=stale
        )
        assert counts(stale) == (0.0, 2.0)  # nothing served from the cache
        assert r017(result)
