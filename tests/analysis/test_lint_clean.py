"""Meta-test: this repository lints clean with an empty baseline.

This is the gate the whole PR rides on — ``repro lint`` over ``src/`` +
``tests/`` must report zero non-baselined findings, per-file AND
whole-program (the graph pass is what the CLI runs by default), and the
checked-in baseline must be empty (no grandfathered debt).
"""

import json
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.config import load_lint_config

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The declared policy (pyproject [tool.reprolint]) — what the CLI runs
#: with; the hardcoded defaults predate the config knob.
CONFIG = load_lint_config(REPO_ROOT)


def test_tree_has_zero_findings():
    result = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"], config=CONFIG)
    assert result.findings == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    ]
    assert result.files_scanned > 100  # sanity: the walk really covered the tree


def test_tree_is_clean_under_whole_program_rules():
    result = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"],
        relative_to=REPO_ROOT,
        graph=True,
        config=CONFIG,
    )
    assert result.findings == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    ]
    # The graph really was built and covers the project.
    assert result.graph is not None
    assert any(m.startswith("repro.") for m in result.graph.modules)
    assert len(result.graph.nodes) > 200


def test_taint_stage_really_ran_on_the_clean_tree():
    """Zero R017-R021 findings must mean the secret-flow pass looked
    and found nothing — not that it was skipped.  The taint model built
    for the full graph must classify real key material in the protocol
    layer as secret-bearing."""
    from repro.analysis.taint.model import SECRET_LEVEL, taint_model

    result = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"],
        relative_to=REPO_ROOT,
        graph=True,
        config=CONFIG,
    )
    assert result.findings == []
    model = taint_model(result.graph)
    secret_bearing = [
        node_id
        for node_id in model.node_ids()
        if any(v.level == SECRET_LEVEL for v in model.env(node_id).values())
    ]
    assert any("repro.protocol" in node_id for node_id in secret_bearing)


def test_checked_in_baseline_is_empty():
    baseline = REPO_ROOT / "reprolint-baseline.json"
    payload = json.loads(baseline.read_text())
    assert payload == {"findings": [], "version": 1}
