"""Meta-test: this repository lints clean with an empty baseline.

This is the gate the whole PR rides on — ``repro lint`` over ``src/`` +
``tests/`` must report zero non-baselined findings, per-file AND
whole-program (the graph pass is what the CLI runs by default), and the
checked-in baseline must be empty (no grandfathered debt).
"""

import json
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.config import load_lint_config

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The declared policy (pyproject [tool.reprolint]) — what the CLI runs
#: with; the hardcoded defaults predate the config knob.
CONFIG = load_lint_config(REPO_ROOT)


def test_tree_has_zero_findings():
    result = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"], config=CONFIG)
    assert result.findings == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    ]
    assert result.files_scanned > 100  # sanity: the walk really covered the tree


def test_tree_is_clean_under_whole_program_rules():
    result = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"],
        relative_to=REPO_ROOT,
        graph=True,
        config=CONFIG,
    )
    assert result.findings == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    ]
    # The graph really was built and covers the project.
    assert result.graph is not None
    assert any(m.startswith("repro.") for m in result.graph.modules)
    assert len(result.graph.nodes) > 200


def test_checked_in_baseline_is_empty():
    baseline = REPO_ROOT / "reprolint-baseline.json"
    payload = json.loads(baseline.read_text())
    assert payload == {"findings": [], "version": 1}
