"""reprotaint: the secret-flow rules R017-R021.

The load-bearing fixtures are cross-module: key material introduced in
one file reaches a sink in another purely through the interprocedural
returns table, with a flow chain (one ``file:line`` per hop) as
evidence.  Every rule gets the four-quadrant treatment — positive,
negative, sanitized, suppressed — because the pass is only trustworthy
if it both fires on the leak and stays quiet on the digest-truncated /
redacted form of the very same flow.
"""

import json
import re

from repro.analysis.reporters import render_json

from .test_graph import graph_lint, write_tree

#: Every evidence hop carries its own file:line anchor.
HOP_RE = re.compile(r"\(.+\.py:\d+\)$")


def by_rule(result, rule_id):
    return sorted(
        (f for f in result.findings if f.rule == rule_id),
        key=lambda f: f.sort_key,
    )


def rule_ids(result):
    return {f.rule for f in result.findings}


class TestR017OutputSink:
    FILES = {
        "keys.py": """
            def load_secret(path):
                secret = path.read_text()
                return secret
            """,
        "report.py": """
            from keys import load_secret

            def banner(path):
                value = load_secret(path)
                print(f"deployment key {value}")
            """,
    }

    def test_cross_module_leak_fires_with_flow_chain(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        (finding,) = by_rule(graph_lint(tmp_path), "R017")
        assert finding.path == "report.py"
        assert "output sink 'print'" in finding.message
        assert finding.evidence  # the flow chain is the point
        for hop in finding.evidence:
            assert HOP_RE.search(hop), hop
        assert any("keys.py" in hop for hop in finding.evidence)

    def test_flow_chain_is_stable_across_cold_runs(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        first = by_rule(graph_lint(tmp_path), "R017")
        second = by_rule(graph_lint(tmp_path), "R017")
        assert [(f.path, f.line, f.evidence) for f in first] == [
            (f.path, f.line, f.evidence) for f in second
        ]

    def test_negative_public_values_print_freely(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "report.py": """
                    def banner(count, label):
                        print(f"graded {count} clips for {label}")
                    """
            },
        )
        assert "R017" not in rule_ids(graph_lint(tmp_path))

    def test_sanitized_digest_is_emit_safe(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "report.py": """
                    import hashlib

                    def banner(secret):
                        digest = hashlib.sha256(secret).hexdigest()[:8]
                        print(f"deployment key {digest}")
                    """
            },
        )
        assert "R017" not in rule_ids(graph_lint(tmp_path))

    def test_redact_helper_clears_the_value(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "report.py": """
                    def redact(value):
                        return "<redacted>"

                    def banner(secret):
                        print(f"deployment key {redact(secret)}")
                    """
            },
        )
        assert "R017" not in rule_ids(graph_lint(tmp_path))

    def test_suppression_silences_and_counts_as_used(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "report.py": """
                    def banner(secret):
                        print(f"key {secret}")  # reprolint: disable=R017
                    """
            },
        )
        result = graph_lint(tmp_path)
        assert "R017" not in rule_ids(result)
        assert "W001" not in rule_ids(result)  # the suppression was used


class TestR018ExceptionMessage:
    def test_nonce_in_raise_message(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "guard.py": """
                    def check(session_nonce):
                        if not session_nonce:
                            raise ValueError(f"bad nonce {session_nonce}")
                    """
            },
        )
        (finding,) = by_rule(graph_lint(tmp_path), "R018")
        assert finding.path == "guard.py"
        assert finding.evidence

    def test_secret_free_message_is_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "guard.py": """
                    def check(session_nonce):
                        if not session_nonce:
                            raise ValueError("missing session nonce")
                    """
            },
        )
        assert "R018" not in rule_ids(graph_lint(tmp_path))

    def test_assert_message_counts(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "guard.py": """
                    def check(tenant_key):
                        assert tenant_key, f"no key: {tenant_key}"
                    """
            },
        )
        assert by_rule(graph_lint(tmp_path), "R018")


class TestR019PickleBoundary:
    def test_secret_in_pool_payload(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "fanout.py": """
                    def grade_one(payload):
                        return len(payload)

                    def grade_all(engine, tenant_key, clips):
                        payloads = [(tenant_key, clip) for clip in clips]
                        return engine.map(grade_one, payloads)
                    """
            },
        )
        (finding,) = by_rule(graph_lint(tmp_path), "R019")
        assert finding.path == "fanout.py"
        assert "map" in finding.message

    def test_digest_payload_crosses_freely(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "fanout.py": """
                    import hashlib

                    def grade_one(payload):
                        return len(payload)

                    def grade_all(engine, tenant_key, clips):
                        token = hashlib.sha256(tenant_key).digest()
                        payloads = [(token, clip) for clip in clips]
                        return engine.map(grade_one, payloads)
                    """
            },
        )
        assert "R019" not in rule_ids(graph_lint(tmp_path))


class TestR020NonConstantTimeCompare:
    def test_tag_equality_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "verify.py": """
                    def verify(expected_tag, provided_tag):
                        return provided_tag == expected_tag
                    """
            },
        )
        (finding,) = by_rule(graph_lint(tmp_path), "R020")
        assert "compare_digest" in finding.message
        assert "==" in finding.snippet

    def test_nonce_inequality_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "verify.py": """
                    def changed(session_nonce, prior):
                        return session_nonce != prior
                    """
            },
        )
        assert by_rule(graph_lint(tmp_path), "R020")

    def test_compare_digest_is_the_sanctioned_form(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "verify.py": """
                    import hmac

                    def verify(expected_tag, provided_tag):
                        return hmac.compare_digest(expected_tag, provided_tag)
                    """
            },
        )
        assert "R020" not in rule_ids(graph_lint(tmp_path))

    def test_plain_value_compares_are_untouched(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "verify.py": """
                    def same_outcome(left, right):
                        return left.outcome == right.outcome
                    """
            },
        )
        assert "R020" not in rule_ids(graph_lint(tmp_path))

    def test_suppression_keeps_a_justified_compare(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "verify.py": """
                    def verify(expected_tag, provided_tag):
                        return provided_tag == expected_tag  # reprolint: disable=R020
                    """
            },
        )
        result = graph_lint(tmp_path)
        assert "R020" not in rule_ids(result)
        assert "W001" not in rule_ids(result)


class TestR021DataclassField:
    def test_secret_field_with_default_repr(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "cfg.py": """
                    import dataclasses

                    @dataclasses.dataclass
                    class Deployment:
                        name: str
                        tenant_key: bytes
                    """
            },
        )
        (finding,) = by_rule(graph_lint(tmp_path), "R021")
        assert finding.path == "cfg.py"
        assert "repr=False" in finding.message

    def test_repr_false_field_is_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "cfg.py": """
                    import dataclasses

                    @dataclasses.dataclass
                    class Deployment:
                        name: str
                        tenant_key: bytes = dataclasses.field(repr=False, default=b"")
                    """
            },
        )
        assert "R021" not in rule_ids(graph_lint(tmp_path))

    def test_public_fields_are_untouched(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "cfg.py": """
                    import dataclasses

                    @dataclasses.dataclass
                    class Deployment:
                        name: str
                        attempts: int = 2
                    """
            },
        )
        assert "R021" not in rule_ids(graph_lint(tmp_path))


class TestTaintToggle:
    def test_no_taint_skips_r017_r021(self, tmp_path):
        write_tree(tmp_path, TestR017OutputSink.FILES)
        result = graph_lint(tmp_path, taint_rules=False)
        assert not rule_ids(result) & {"R017", "R018", "R019", "R020", "R021"}

    def test_no_taint_leaves_taint_suppressions_unjudged(self, tmp_path):
        """A disable=R017 comment is not a stale W001 when the rule it
        targets never ran — same contract --no-async established."""
        write_tree(
            tmp_path,
            {
                "report.py": """
                    def banner(secret):
                        print(f"key {secret}")  # reprolint: disable=R017
                    """
            },
        )
        assert "W001" not in rule_ids(graph_lint(tmp_path, taint_rules=False))


class TestSchemaV4:
    def test_taint_findings_render_with_category_and_evidence(self, tmp_path):
        write_tree(tmp_path, TestR017OutputSink.FILES)
        result = graph_lint(tmp_path)
        document = json.loads(
            render_json(result.findings, [], result.files_scanned)
        )
        assert document["version"] == 4
        taint = [f for f in document["findings"] if f["rule"] == "R017"]
        assert taint and all(f["category"] == "taint" for f in taint)
        assert all(f["evidence"] for f in taint)
        by_id = {entry["id"]: entry for entry in document["rules"]}
        assert {"R017", "R018", "R019", "R020", "R021"} <= set(by_id)
        for entry in document["rules"]:
            assert "example" in entry

    def test_json_round_trips_byte_stable(self, tmp_path):
        write_tree(tmp_path, TestR017OutputSink.FILES)
        result = graph_lint(tmp_path)
        first = render_json(result.findings, [], result.files_scanned)
        again = graph_lint(tmp_path)
        second = render_json(again.findings, [], again.files_scanned)
        assert first == second
