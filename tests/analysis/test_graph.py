"""reprograph: the whole-program layer (summaries, resolution, R007-R011).

The load-bearing tests here are the cross-module fixtures: each builds
a small multi-file project where the per-file rules (R001/R002/R003)
provably report nothing, and asserts the corresponding graph rule fires
with call-chain evidence.  That is the entire reason the layer exists.
"""

import textwrap

import pytest

from repro.analysis import LintConfig, analyze_source, lint_paths
from repro.analysis.graph import (
    SummaryCache,
    build_graph,
    module_name_for,
    summarize_module,
)
from repro.analysis.context import ModuleContext


def write_tree(tmp_path, files):
    for name, source in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))


def graph_lint(tmp_path, **kwargs):
    return lint_paths([tmp_path], relative_to=tmp_path, graph=True, **kwargs)


def assert_per_file_clean(files):
    """The premise of every cross-module fixture: per-file rules miss."""
    for name, source in files.items():
        assert analyze_source(textwrap.dedent(source), path=name) == [], name


class TestModuleNaming:
    def test_src_root_is_stripped(self):
        assert module_name_for("src/repro/core/features.py") == (
            "repro.core.features",
            False,
        )

    def test_package_init(self):
        assert module_name_for("src/repro/obs/__init__.py") == ("repro.obs", True)

    def test_tests_keep_their_prefix(self):
        assert module_name_for("tests/core/test_roi.py") == (
            "tests.core.test_roi",
            False,
        )


class TestSummaries:
    def test_roundtrip_through_dict(self):
        source = textwrap.dedent(
            """
            import numpy as np

            __all__ = ["draw"]

            def draw(rng):
                return helper(rng)

            def helper(rng):
                return rng.normal()
            """
        )
        ctx = ModuleContext("src/repro/sampling.py", source)
        summary = summarize_module(ctx)
        from repro.analysis.graph import ModuleSummary

        clone = ModuleSummary.from_dict(summary.to_dict())
        assert clone == summary
        assert clone.exports == ("draw",)
        assert [c.target for c in clone.functions["draw"].calls] == ["helper"]

    def test_suppressed_effect_is_blessed(self):
        source = textwrap.dedent(
            """
            import numpy as np

            def noisy():
                return np.random.rand(3)  # reprolint: disable=R001
            """
        )
        summary = summarize_module(ModuleContext("m.py", source))
        assert summary.functions["noisy"].effects == ()

    def test_unsuppressed_effect_is_recorded(self):
        source = textwrap.dedent(
            """
            import numpy as np

            def noisy():
                return np.random.rand(3)
            """
        )
        summary = summarize_module(ModuleContext("m.py", source))
        (effect,) = summary.functions["noisy"].effects
        assert (effect.kind, effect.detail) == ("rng", "numpy.random.rand")


R007_FILES = {
    "util.py": """
        from random import random as draw
        """,
    "payload.py": """
        from util import draw

        def task(p):
            return draw()

        def run_batch(engine, tasks):
            return engine.map(task, tasks)
        """,
}


class TestR007TransitiveRandomness:
    def test_per_file_rules_miss_the_chain(self):
        assert_per_file_clean(R007_FILES)

    def test_graph_rule_fires_with_evidence(self, tmp_path):
        write_tree(tmp_path, R007_FILES)
        result = graph_lint(tmp_path)
        findings = [f for f in result.findings if f.rule == "R007"]
        assert findings, [f"{f.rule} {f.message}" for f in result.findings]
        chain = findings[0]
        assert "random.random" in chain.message
        assert chain.evidence  # one hop per entry, each with file:line
        assert any("payload.py:" in hop for hop in chain.evidence)
        assert "random.random()" in chain.evidence[-1]

    def test_inline_suppression_at_the_anchor_works(self, tmp_path):
        files = dict(R007_FILES)
        files["payload.py"] = """
            from util import draw

            def task(p):
                return draw()

            def build_batch(engine, tasks):
                return engine.map(task, tasks)  # reprolint: disable=R007
            """
        write_tree(tmp_path, files)
        result = graph_lint(tmp_path)
        assert [f for f in result.findings if f.rule == "R007"] == []


R008_FILES = {
    "clockutil.py": """
        from time import perf_counter as timer
        """,
    "report.py": """
        from clockutil import timer

        def elapsed():
            return timer()
        """,
    "caller.py": """
        from report import elapsed

        def measure():
            return elapsed()
        """,
}


class TestR008TransitiveWallClock:
    def test_per_file_rules_miss_the_chain(self):
        assert_per_file_clean(R008_FILES)

    def test_aliased_clock_read_is_found(self, tmp_path):
        write_tree(tmp_path, R008_FILES)
        result = graph_lint(tmp_path)
        findings = [f for f in result.findings if f.rule == "R008"]
        paths = {f.path for f in findings}
        # (a) the laundered read itself, (b) the cross-module call into it.
        assert "report.py" in paths
        assert "caller.py" in paths
        direct = next(f for f in findings if f.path == "report.py")
        assert "time.perf_counter" in direct.message

    def test_allowlisted_module_is_blessed(self, tmp_path):
        write_tree(tmp_path, R008_FILES)
        config = LintConfig(wall_clock_allowlist=("report.py",))
        result = graph_lint(tmp_path, config=config)
        findings = [f for f in result.findings if f.rule == "R008"]
        # Neither the read inside the allowlisted module nor calls into
        # it are flagged: clock taint does not propagate out of it.
        assert findings == []


R010_CONFIG = LintConfig(facade="pkg/api.py", project_packages=("pkg",))

R010_FILES = {
    "pkg/__init__.py": "",
    "pkg/core.py": """
        __all__ = ["good"]

        def good():
            return 1

        def hidden():
            return 2
        """,
    "pkg/api.py": """
        from pkg.core import good, hidden, missing

        __all__ = ["good", "ghost"]
        """,
}


class TestR010FacadeDrift:
    def test_per_file_rules_miss_the_drift(self):
        assert_per_file_clean(R010_FILES)

    def test_both_drift_directions_are_found(self, tmp_path):
        write_tree(tmp_path, R010_FILES)
        result = graph_lint(tmp_path, config=R010_CONFIG)
        messages = [f.message for f in result.findings if f.rule == "R010"]
        assert any("'missing'" in m and "no longer defines" in m for m in messages)
        assert any("'ghost'" in m and "never binds" in m for m in messages)
        assert any("'hidden'" in m and "__all__" in m for m in messages)
        assert all(f.path == "pkg/api.py" for f in result.findings if f.rule == "R010")

    def test_drift_free_facade_is_clean(self, tmp_path):
        files = dict(R010_FILES)
        files["pkg/api.py"] = """
            from pkg.core import good

            __all__ = ["good"]
            """
        write_tree(tmp_path, files)
        result = graph_lint(tmp_path, config=R010_CONFIG)
        assert [f for f in result.findings if f.rule == "R010"] == []


R011_FILES = {
    "res.py": """
        class Resource:
            def __init__(self, path):
                self.fh = open(path)

            def read(self):
                return self.fh.read()
        """,
    "driver.py": """
        from res import Resource

        def task(r):
            return r.read()

        def run_all(engine, path):
            item = Resource(path)
            return engine.map(task, [item])
        """,
}


class TestR011CrossModulePickleSafety:
    def test_per_file_rules_miss_the_hazard(self):
        assert_per_file_clean(R011_FILES)

    def test_open_file_in_payload_class_is_found(self, tmp_path):
        write_tree(tmp_path, R011_FILES)
        result = graph_lint(tmp_path)
        findings = [f for f in result.findings if f.rule == "R011"]
        assert findings, [f"{f.rule} {f.message}" for f in result.findings]
        finding = findings[0]
        assert finding.path == "driver.py"
        assert "open file" in finding.message
        assert any("res.py:" in hop for hop in finding.evidence)

    def test_enabled_instrumentation_handle_is_found(self, tmp_path):
        files = {
            "obs_payload.py": """
                from repro.obs import Instrumentation

                def task(x):
                    return x

                def run_obs(engine, items):
                    instr = Instrumentation.enabled()
                    return engine.map(task, [(i, instr) for i in items])
                """,
        }
        assert_per_file_clean(files)
        write_tree(tmp_path, files)
        result = graph_lint(tmp_path)
        findings = [f for f in result.findings if f.rule == "R011"]
        assert any("Instrumentation" in f.message for f in findings)


class TestR009DeadSurface:
    def test_unreferenced_public_function_in_project_package(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                def used():
                    return 1

                def orphan():
                    return 2

                def _private_orphan():
                    return 3

                value = used()
                """,
        }
        write_tree(tmp_path, files)
        config = LintConfig(project_packages=("pkg",))
        result = graph_lint(tmp_path, config=config)
        names = [f.message for f in result.findings if f.rule == "R009"]
        assert any("orphan" in m for m in names)
        assert not any("used" in m for m in names)
        assert not any("_private_orphan" in m for m in names)

    def test_files_outside_project_packages_are_exempt(self, tmp_path):
        write_tree(tmp_path, {"scratch.py": "def orphan():\n    return 1\n"})
        result = graph_lint(tmp_path)  # default project-packages: repro
        assert [f for f in result.findings if f.rule == "R009"] == []

    def test_ignore_names_option(self, tmp_path):
        files = {"pkg/__init__.py": "", "pkg/mod.py": "def orphan():\n    return 1\n"}
        write_tree(tmp_path, files)
        config = LintConfig(
            project_packages=("pkg",),
            rule_options=(("R009", (("ignore-names", ("orphan",)),)),),
        )
        result = graph_lint(tmp_path, config=config)
        assert [f for f in result.findings if f.rule == "R009"] == []


class TestIncrementalCache:
    FILES = {
        "alpha.py": "def alpha():\n    return 1\n\nvalue = alpha()\n",
        "beta.py": "import alpha\n\nvalue = alpha.value\n",
        "gamma.py": "import beta\n\nvalue = beta.value\n",
    }

    @staticmethod
    def _counts(registry):
        snapshot = registry.snapshot()
        return (
            snapshot.counter_value("reprograph_summaries_total", result="hit"),
            snapshot.counter_value("reprograph_summaries_total", result="miss"),
        )

    def test_unchanged_tree_re_summarizes_nothing(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        write_tree(tmp_path, self.FILES)
        cache_file = tmp_path / "cache" / "summaries.json"

        first = MetricsRegistry()
        graph_lint(tmp_path, cache=SummaryCache(cache_file), metrics=first)
        assert self._counts(first) == (0.0, 3.0)

        second = MetricsRegistry()
        graph_lint(tmp_path, cache=SummaryCache(cache_file), metrics=second)
        assert self._counts(second) == (3.0, 0.0)

    def test_single_mutation_re_summarizes_only_that_module(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        write_tree(tmp_path, self.FILES)
        cache_file = tmp_path / "cache" / "summaries.json"
        graph_lint(tmp_path, cache=SummaryCache(cache_file))

        (tmp_path / "beta.py").write_text(
            "import alpha\n\nvalue = alpha.value + 1\n"
        )
        registry = MetricsRegistry()
        graph_lint(tmp_path, cache=SummaryCache(cache_file), metrics=registry)
        assert self._counts(registry) == (2.0, 1.0)

    def test_cached_run_produces_identical_findings(self, tmp_path):
        write_tree(tmp_path, R007_FILES)
        cache_file = tmp_path / "cache" / "summaries.json"
        fresh = graph_lint(tmp_path, cache=SummaryCache(cache_file))
        cached = graph_lint(tmp_path, cache=SummaryCache(cache_file))
        assert [(f.rule, f.path, f.line, f.message, f.evidence) for f in fresh.findings] == [
            (f.rule, f.path, f.line, f.message, f.evidence) for f in cached.findings
        ]

    def test_corrupt_cache_is_discarded_not_fatal(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        cache_file = tmp_path / "cache" / "summaries.json"
        cache_file.parent.mkdir()
        cache_file.write_text("{not json")
        result = graph_lint(tmp_path, cache=SummaryCache(cache_file))
        assert result.graph is not None


class TestDeterminism:
    def test_graph_build_is_order_independent(self, tmp_path):
        write_tree(tmp_path, R007_FILES)
        result = graph_lint(tmp_path)
        summaries = list(result.graph.modules.values())
        forward = build_graph(summaries)
        backward = build_graph(list(reversed(summaries)))
        assert forward.transitive == backward.transitive
        assert forward.edges == backward.edges
