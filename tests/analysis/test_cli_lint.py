"""The ``python -m repro lint`` surface: exit codes, JSON output, baseline flags."""

import json
import textwrap

import pytest

from repro.cli import main

from .test_rules import RULE_FIXTURES


def write_fixture(tmp_path, rule_id):
    target = tmp_path / f"fixture_{rule_id.lower()}.py"
    target.write_text(textwrap.dedent(RULE_FIXTURES[rule_id]))
    return target


class TestExitCodes:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_each_rule_fixture_fails_the_gate(self, tmp_path, rule_id, capsys):
        target = write_fixture(tmp_path, rule_id)
        assert main(["lint", str(target)]) == 1
        assert rule_id in capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("def double(x):\n    return 2 * x\n")
        assert main(["lint", str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nowhere")]) == 2
        assert "reprolint" in capsys.readouterr().out


class TestBaselineFlags:
    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        target = write_fixture(tmp_path, "R001")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(target), "--write-baseline", "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", str(target), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_no_baseline_reinstate_findings(self, tmp_path, capsys):
        target = write_fixture(tmp_path, "R001")
        baseline = tmp_path / "baseline.json"
        main(["lint", str(target), "--write-baseline", "--baseline", str(baseline)])
        capsys.readouterr()
        assert (
            main(["lint", str(target), "--baseline", str(baseline), "--no-baseline"])
            == 1
        )


class TestJsonReport:
    def test_json_is_machine_parseable(self, tmp_path, capsys):
        target = write_fixture(tmp_path, "R002")
        assert main(["lint", str(target), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 4
        assert report["counts"]["new"] == 1
        (finding,) = report["findings"]
        assert finding["rule"] == "R002"
        assert finding["category"] == "per-file"
        assert finding["line"] > 0
        assert finding["evidence"] == []  # per-file rules carry no chain
        assert {"id", "title", "category", "rationale"} <= set(report["rules"][0])

    def test_json_is_byte_stable_across_runs(self, tmp_path, capsys):
        target = write_fixture(tmp_path, "R005")
        main(["lint", str(target), "--format", "json"])
        first = capsys.readouterr().out
        main(["lint", str(target), "--format", "json"])
        assert capsys.readouterr().out == first


class TestListRules:
    def test_lists_per_file_and_graph_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in sorted(RULE_FIXTURES):
            assert rule_id in out
        for rule_id in ("R007", "R008", "R009", "R010", "R011"):
            assert rule_id in out
        for rule_id in ("R012", "R013", "R014", "R015", "R016"):
            assert rule_id in out
        for rule_id in ("R017", "R018", "R019", "R020", "R021"):
            assert rule_id in out


class TestExplain:
    @pytest.mark.parametrize(
        "rule_id",
        [f"R{n:03d}" for n in range(1, 22)] + ["W001", "W002"],
    )
    def test_every_rule_id_explains(self, rule_id, capsys):
        assert main(["lint", "--explain", rule_id]) == 0
        out = capsys.readouterr().out
        assert rule_id in out
        assert f"disable={rule_id}" in out  # the suppression syntax

    def test_lowercase_id_is_accepted(self, capsys):
        assert main(["lint", "--explain", "r017"]) == 0
        assert "R017" in capsys.readouterr().out

    def test_unknown_id_exits_two(self, capsys):
        assert main(["lint", "--explain", "R099"]) == 2
        assert "unknown rule id" in capsys.readouterr().out

    def test_taint_explanations_carry_an_example(self, capsys):
        main(["lint", "--explain", "R020"])
        out = capsys.readouterr().out
        assert "example" in out
        assert "compare_digest" in out


class TestNoTaintFlag:
    def test_no_taint_skips_the_secret_flow_pass(self, tmp_path, capsys):
        target = tmp_path / "leak.py"
        target.write_text(
            'def banner(secret):\n    print(f"key {secret}")\n'
        )
        assert main(["lint", str(target)]) == 1
        assert "R017" in capsys.readouterr().out
        assert main(["lint", str(target), "--no-taint"]) == 0
        assert "clean" in capsys.readouterr().out
