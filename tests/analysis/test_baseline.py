"""Baseline files: write → load → split round-trip and grandfathering."""

import json
import textwrap

import pytest

from repro.analysis import (
    analyze_source,
    load_baseline,
    split_baselined,
    write_baseline,
)


def sample_findings():
    source = textwrap.dedent(
        """
        import numpy as np

        def a():
            return np.random.rand(3)

        def b():
            return np.random.normal()
        """
    )
    return analyze_source(source, path="sample.py")


class TestRoundTrip:
    def test_write_then_load_recovers_every_fingerprint(self, tmp_path):
        findings = sample_findings()
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        assert load_baseline(baseline) == {f.fingerprint for f in findings}

    def test_split_against_own_baseline_is_all_old(self, tmp_path):
        findings = sample_findings()
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        new, old = split_baselined(findings, load_baseline(baseline))
        assert new == []
        assert old == findings

    def test_fresh_finding_survives_the_split(self, tmp_path):
        findings = sample_findings()
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings[:1])
        new, old = split_baselined(findings, load_baseline(baseline))
        assert new == findings[1:]
        assert old == findings[:1]

    def test_written_file_is_deterministic(self, tmp_path):
        findings = sample_findings()
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_baseline(first, findings)
        write_baseline(second, findings)
        assert first.read_text() == second.read_text()


class TestFormat:
    def test_empty_baseline_shape(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [])
        payload = json.loads(baseline.read_text())
        assert payload == {"findings": [], "version": 1}

    def test_entries_carry_context_for_human_review(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, sample_findings())
        payload = json.loads(baseline.read_text())
        for entry in payload["findings"]:
            assert set(entry) == {"fingerprint", "rule", "path", "message"}

    def test_unknown_version_rejected(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"findings": [], "version": 99}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(baseline)

    def test_missing_file_raises(self, tmp_path):
        # The CLI checks is_file() first; a direct load of a missing
        # path should fail loudly rather than silently grandfather nothing.
        with pytest.raises(FileNotFoundError):
            load_baseline(tmp_path / "absent.json")
