"""reproasync: the concurrency-safety rules R012-R016.

Every firing fixture here is a small multi-file project that the
per-file rules provably report nothing on; the async layer must find
the hazard interprocedurally and anchor it with a spawn/run chain
(``task root 'x' spawned at file:line``) in the evidence.  Each rule
also gets a non-firing twin — the blessed spelling of the same code —
because a concurrency linter that cannot stay quiet on correct code
would just get suppressed wholesale.
"""

import textwrap

from repro.analysis import LintConfig, analyze_source, lint_paths

from .test_graph import graph_lint, write_tree


def assert_per_file_clean(files):
    for name, source in files.items():
        assert analyze_source(textwrap.dedent(source), path=name) == [], name


def rule_findings(result, rule_id):
    return [f for f in result.findings if f.rule == rule_id]


# ---------------------------------------------------------------------------
# R012: foreign await inside a scheduler task
# ---------------------------------------------------------------------------

R012_FILES = {
    "app.py": """
        import asyncio

        async def worker(n):
            await asyncio.sleep(0.01)
            return n

        def main(sched):
            sched.spawn(worker(1))
            return sched.run(worker(2), wall_guard_s=5.0)
        """,
}


class TestR012ForeignAwait:
    def test_per_file_rules_miss_it(self):
        assert_per_file_clean(R012_FILES)

    def test_fires_with_spawn_chain_evidence(self, tmp_path):
        write_tree(tmp_path, R012_FILES)
        result = graph_lint(tmp_path)
        findings = rule_findings(result, "R012")
        assert findings, [f"{f.rule} {f.message}" for f in result.findings]
        finding = findings[0]
        assert "asyncio.sleep" in finding.message
        assert finding.path == "app.py"
        assert any("task root" in hop for hop in finding.evidence)
        assert any("app.py:" in hop for hop in finding.evidence)

    def test_primitive_allowlist_blesses_it(self, tmp_path):
        write_tree(tmp_path, R012_FILES)
        config = LintConfig(
            rule_options=(("R012", (("primitive-allowlist", ("asyncio.sleep",)),)),)
        )
        result = graph_lint(tmp_path, config=config)
        assert rule_findings(result, "R012") == []

    def test_scheduler_module_itself_is_blessed(self, tmp_path):
        files = {"sched.py": R012_FILES["app.py"]}
        write_tree(tmp_path, files)
        config = LintConfig(scheduler_modules=("sched.py",))
        result = graph_lint(tmp_path, config=config)
        assert rule_findings(result, "R012") == []

    def test_await_on_parameter_method_is_not_foreign(self, tmp_path):
        # `await q.get(...)` on a parameter cannot be resolved statically;
        # treating it as external would flag every scheduler-queue read.
        files = {
            "app.py": """
                async def worker(q):
                    return await q.get(5.0)

                def main(sched, q):
                    sched.spawn(worker(q))
                """,
        }
        write_tree(tmp_path, files)
        assert rule_findings(graph_lint(tmp_path), "R012") == []

    def test_no_async_flag_disables_it(self, tmp_path):
        write_tree(tmp_path, R012_FILES)
        result = lint_paths(
            [tmp_path], relative_to=tmp_path, graph=True, async_rules=False
        )
        assert rule_findings(result, "R012") == []

    def test_inline_suppression_works(self, tmp_path):
        files = {
            "app.py": """
                import asyncio

                async def worker(n):
                    await asyncio.sleep(0.01)  # reprolint: disable=R012
                    return n

                def main(sched):
                    sched.spawn(worker(1))
                """,
        }
        write_tree(tmp_path, files)
        result = graph_lint(tmp_path)
        assert rule_findings(result, "R012") == []
        # ... and the suppression counts as used: no W001 either.
        assert rule_findings(result, "W001") == []


# ---------------------------------------------------------------------------
# R013: lock-order inversion
# ---------------------------------------------------------------------------

R013_FILES = {
    "svc.py": """
        from locks import ServiceLock

        class Pair:
            def __init__(self, scheduler):
                self.transfer_lock = ServiceLock(scheduler)
                self.audit_lock = ServiceLock(scheduler)

            async def transfer(self):
                async with self.transfer_lock:
                    async with self.audit_lock:
                        return 1

            async def audit(self):
                async with self.audit_lock:
                    async with self.transfer_lock:
                        return 2
        """,
    "locks.py": """
        class ServiceLock:
            def __init__(self, scheduler):
                self.scheduler = scheduler

            async def __aenter__(self):
                return self

            async def __aexit__(self, *exc):
                return False
        """,
}


class TestR013LockOrderInversion:
    def test_fires_with_both_acquisition_sites(self, tmp_path):
        write_tree(tmp_path, R013_FILES)
        findings = rule_findings(graph_lint(tmp_path), "R013")
        assert findings, "inversion not detected"
        finding = findings[0]
        assert "lock-order inversion" in finding.message
        assert "transfer_lock" in finding.message
        assert "audit_lock" in finding.message
        assert len(finding.evidence) == 2
        assert all("svc.py:" in hop for hop in finding.evidence)

    def test_consistent_order_is_clean(self, tmp_path):
        files = dict(R013_FILES)
        files["svc.py"] = """
            from locks import ServiceLock

            class Pair:
                def __init__(self, scheduler):
                    self.transfer_lock = ServiceLock(scheduler)
                    self.audit_lock = ServiceLock(scheduler)

                async def transfer(self):
                    async with self.transfer_lock:
                        async with self.audit_lock:
                            return 1

                async def audit(self):
                    async with self.transfer_lock:
                        async with self.audit_lock:
                            return 2
            """
        write_tree(tmp_path, files)
        assert rule_findings(graph_lint(tmp_path), "R013") == []

    def test_inversion_across_call_boundary(self, tmp_path):
        # Lock B is taken in a helper called while A is held; the cycle
        # only exists in the interprocedural lock-set dataflow.
        files = {
            "svc.py": """
                from locks import ServiceLock

                class Bank:
                    def __init__(self, scheduler):
                        self.cache_lock = ServiceLock(scheduler)
                        self.flush_lock = ServiceLock(scheduler)

                    async def _flush(self):
                        async with self.flush_lock:
                            return 0

                    async def read(self):
                        async with self.cache_lock:
                            return await self._flush()

                    async def write(self):
                        async with self.flush_lock:
                            async with self.cache_lock:
                                return 1
                """,
            "locks.py": R013_FILES["locks.py"],
        }
        write_tree(tmp_path, files)
        findings = rule_findings(graph_lint(tmp_path), "R013")
        assert findings, "cross-function inversion not detected"


# ---------------------------------------------------------------------------
# R014: blocking under a lock / inside a task
# ---------------------------------------------------------------------------

R014_FILES = {
    "svc.py": """
        import time

        from locks import ServiceLock

        class Service:
            def __init__(self, scheduler):
                self.commit_lock = ServiceLock(scheduler)

            async def commit(self):
                async with self.commit_lock:
                    time.sleep(0.5)
                    return 1
        """,
    "locks.py": R013_FILES["locks.py"],
}


class TestR014BlockingCalls:
    def test_sleep_under_lock_fires(self, tmp_path):
        write_tree(tmp_path, R014_FILES)
        findings = rule_findings(graph_lint(tmp_path), "R014")
        assert findings
        finding = findings[0]
        assert "time.sleep" in finding.message
        assert "commit_lock" in finding.message

    def test_sleep_inside_spawned_task_fires_with_chain(self, tmp_path):
        files = {
            "app.py": """
                import time

                async def worker(n):
                    time.sleep(0.1)
                    return n

                def main(sched):
                    sched.spawn(worker(1))
                """,
        }
        write_tree(tmp_path, files)
        findings = rule_findings(graph_lint(tmp_path), "R014")
        assert findings
        finding = findings[0]
        assert "scheduler task" in finding.message
        assert any("task root" in hop for hop in finding.evidence)

    def test_sleep_outside_locks_and_tasks_is_fine(self, tmp_path):
        files = {
            "tool.py": """
                import time

                def backoff(n):
                    time.sleep(n)
                """,
        }
        write_tree(tmp_path, files)
        assert rule_findings(graph_lint(tmp_path), "R014") == []

    def test_engine_map_under_lock_fires(self, tmp_path):
        files = {
            "svc.py": """
                from locks import ServiceLock

                def work(x):
                    return x + 1

                class Service:
                    def __init__(self, scheduler, engine):
                        self.batch_lock = ServiceLock(scheduler)
                        self.engine = engine

                    async def run_batch(self, items):
                        async with self.batch_lock:
                            return self.engine.map(work, items)
                """,
            "locks.py": R013_FILES["locks.py"],
        }
        write_tree(tmp_path, files)
        findings = rule_findings(graph_lint(tmp_path), "R014")
        assert findings
        assert "ExecutionEngine.map" in findings[0].message


# ---------------------------------------------------------------------------
# R015: unbounded waits
# ---------------------------------------------------------------------------

R015_FILES = {
    "app.py": """
        async def waiter(q):
            return await q.get()

        def main(sched, q):
            return sched.run(waiter(q))
        """,
}


class TestR015UnboundedWait:
    def test_unguarded_run_and_unbounded_park_both_fire(self, tmp_path):
        write_tree(tmp_path, R015_FILES)
        findings = rule_findings(graph_lint(tmp_path), "R015")
        messages = [f.message for f in findings]
        assert any("without" in m and "wall_guard_s" in m for m in messages)
        assert any("awaits get()" in m for m in messages)
        park = next(f for f in findings if "awaits get()" in f.message)
        assert any("no wall_guard_s" in hop for hop in park.evidence)

    def test_guarded_run_blesses_the_park(self, tmp_path):
        files = {
            "app.py": """
                async def waiter(q):
                    return await q.get()

                def main(sched, q):
                    return sched.run(waiter(q), wall_guard_s=30.0)
                """,
        }
        write_tree(tmp_path, files)
        assert rule_findings(graph_lint(tmp_path), "R015") == []

    def test_timeout_on_the_wait_itself_is_enough(self, tmp_path):
        files = {
            "app.py": """
                async def waiter(q):
                    return await q.get(5.0)

                def main(sched, q):
                    return sched.run(waiter(q), wall_guard_s=30.0)
                """,
        }
        write_tree(tmp_path, files)
        assert rule_findings(graph_lint(tmp_path), "R015") == []

    def test_forwarded_guard_keyword_counts(self, tmp_path):
        # run_workload-style delegation: the wrapper exposes wall_guard_s
        # and forwards it, so the call site is the caller's decision.
        files = {
            "app.py": """
                async def waiter(q):
                    return await q.get()

                def drive(sched, q, wall_guard_s=None):
                    return sched.run(waiter(q), wall_guard_s=wall_guard_s)
                """,
        }
        write_tree(tmp_path, files)
        findings = rule_findings(graph_lint(tmp_path), "R015")
        assert not any("drives a scheduler run" in f.message for f in findings)


# ---------------------------------------------------------------------------
# R016: cross-task shared-state races
# ---------------------------------------------------------------------------

R016_FILES = {
    "app.py": """
        TOTAL = 0

        async def bump_fast(sched):
            global TOTAL
            await sched.sleep(0.01)
            TOTAL = TOTAL + 1

        async def bump_slow(sched):
            global TOTAL
            await sched.sleep(0.05)
            TOTAL = TOTAL + 1

        def main(sched):
            sched.spawn(bump_fast(sched))
            sched.spawn(bump_slow(sched))
        """,
}


class TestR016SharedStateRace:
    def test_two_spawn_sites_no_lock_fires(self, tmp_path):
        write_tree(tmp_path, R016_FILES)
        findings = rule_findings(graph_lint(tmp_path), "R016")
        assert findings
        finding = findings[0]
        assert "TOTAL" in finding.message
        assert "distinct spawn sites" in finding.message
        # Both writers and both spawn chains appear in the evidence.
        writes = [hop for hop in finding.evidence if "writes" in hop]
        roots = [hop for hop in finding.evidence if "task root" in hop]
        assert len(writes) == 2
        assert len(roots) == 2

    def test_common_lock_blesses_it(self, tmp_path):
        files = {
            "app.py": """
                from threading import RLock

                TOTAL = 0
                TOTAL_LOCK = RLock()

                async def bump_fast(sched):
                    global TOTAL
                    await sched.sleep(0.01)
                    with TOTAL_LOCK:
                        TOTAL = TOTAL + 1

                async def bump_slow(sched):
                    global TOTAL
                    await sched.sleep(0.05)
                    with TOTAL_LOCK:
                        TOTAL = TOTAL + 1

                def main(sched):
                    sched.spawn(bump_fast(sched))
                    sched.spawn(bump_slow(sched))
                """,
        }
        write_tree(tmp_path, files)
        assert rule_findings(graph_lint(tmp_path), "R016") == []

    def test_single_spawn_site_is_not_a_pair(self, tmp_path):
        files = {
            "app.py": """
                TOTAL = 0

                async def bump(sched):
                    global TOTAL
                    await sched.sleep(0.01)
                    TOTAL = TOTAL + 1

                def main(sched):
                    sched.spawn(bump(sched))
                """,
        }
        write_tree(tmp_path, files)
        assert rule_findings(graph_lint(tmp_path), "R016") == []

    def test_writer_without_suspension_is_exempt(self, tmp_path):
        files = {
            "app.py": """
                TOTAL = 0

                def bump_a():
                    global TOTAL
                    TOTAL = TOTAL + 1

                def bump_b():
                    global TOTAL
                    TOTAL = TOTAL + 2

                async def task_a(sched):
                    bump_a()

                async def task_b(sched):
                    bump_b()

                def main(sched):
                    sched.spawn(task_a(sched))
                    sched.spawn(task_b(sched))
                """,
        }
        write_tree(tmp_path, files)
        assert rule_findings(graph_lint(tmp_path), "R016") == []

    def test_ignore_attrs_option(self, tmp_path):
        write_tree(tmp_path, R016_FILES)
        config = LintConfig(
            rule_options=(("R016", (("ignore-attrs", ("TOTAL",)),)),)
        )
        result = graph_lint(tmp_path, config=config)
        assert rule_findings(result, "R016") == []
