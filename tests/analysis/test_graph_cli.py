"""CLI surface of the whole-program pass and its satellites.

Covers the graph flags (``--no-graph``, ``--dump-graph``), structured
``E000`` handling for unanalyzable files, the ``[tool.reprolint]``
pyproject section, and the ``--changed-only`` git fast path.
"""

import json
import shutil
import subprocess
import textwrap

import pytest

from repro.cli import main

R007_FILES = {
    "util.py": "from random import random as draw\n",
    "payload.py": textwrap.dedent(
        """
        from util import draw

        def task(p):
            return draw()

        def run_batch(engine, tasks):
            return engine.map(task, tasks)
        """
    ),
}


def write_tree(tmp_path, files):
    for name, source in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)


class TestE000:
    def test_syntax_error_is_a_structured_finding(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n    pass\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "E000" in out
        assert "parse" in out

    def test_non_utf8_is_a_structured_finding(self, tmp_path, capsys):
        bad = tmp_path / "latin.py"
        bad.write_bytes(b"# caf\xe9\nx = 1\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "E000" in out
        assert "UTF-8" in out

    def test_broken_file_does_not_hide_the_rest(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        (tmp_path / "dirty.py").write_text(
            "import numpy as np\n\ndef f():\n    return np.random.rand()\n"
        )
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in report["findings"]} == {"E000", "R001"}


class TestGraphFlags:
    """Cross-module resolution keys on cwd-relative module names, so
    these run from inside the fixture tree — the realistic invocation."""

    @pytest.fixture(autouse=True)
    def _in_fixture_tree(self, tmp_path, monkeypatch):
        write_tree(tmp_path, R007_FILES)
        monkeypatch.chdir(tmp_path)

    def test_cross_module_finding_needs_the_graph(self, capsys):
        assert main(["lint", ".", "--no-graph"]) == 0
        capsys.readouterr()
        assert main(["lint", "."]) == 1
        assert "R007" in capsys.readouterr().out

    def test_graph_findings_carry_evidence_in_json(self, capsys):
        assert main(["lint", ".", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        chains = [f["evidence"] for f in report["findings"] if f["rule"] == "R007"]
        assert chains and all(chain for chain in chains)

    def test_dump_graph_json_schema(self, capsys):
        assert main(["lint", ".", "--dump-graph", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert set(document) == {"version", "modules", "nodes", "edges"}
        by_id = {node["id"]: node for node in document["nodes"]}
        assert "rng" in by_id["payload:task"]["transitive"]
        assert any(
            edge["callee"] == "payload:task" and edge["ref"]
            for edge in document["edges"]
        )

    def test_dump_graph_dot(self, capsys):
        assert main(["lint", ".", "--dump-graph", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "payload:task" in out

    def test_dump_graph_requires_graph_pass(self, capsys):
        assert main(["lint", ".", "--no-graph", "--dump-graph", "json"]) == 2

    def test_dump_graph_json_is_byte_stable(self, capsys):
        main(["lint", ".", "--dump-graph", "json", "--no-cache"])
        first = capsys.readouterr().out
        main(["lint", ".", "--dump-graph", "json", "--no-cache"])
        assert capsys.readouterr().out == first


class TestPyprojectConfig:
    def test_wall_clock_allowlist_is_configurable(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "timing.py").write_text(
            "import time\n\ndef stamp():\n    return time.time()\n"
        )
        assert main(["lint", "timing.py"]) == 1  # default allowlist: flagged
        capsys.readouterr()
        (tmp_path / "pyproject.toml").write_text(
            "[tool.reprolint]\nwall-clock-allowlist = [\"timing.py\"]\n"
        )
        assert main(["lint", "timing.py"]) == 0

    def test_malformed_section_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "clean.py").write_text("x = 1\n")
        (tmp_path / "pyproject.toml").write_text(
            "[tool.reprolint]\nwall-clock-allowlist = \"not-a-list\"\n"
        )
        assert main(["lint", "clean.py"]) == 2
        assert "reprolint" in capsys.readouterr().out


def _git(*args, cwd):
    subprocess.run(
        ["git", "-c", "user.name=t", "-c", "user.email=t@example.invalid", *args],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


@pytest.mark.skipif(shutil.which("git") is None, reason="git unavailable")
class TestChangedOnly:
    def test_only_changed_files_are_reported(self, tmp_path, monkeypatch, capsys):
        dirty = "import numpy as np\n\ndef f():\n    return np.random.rand()\n"
        write_tree(tmp_path, {"a.py": dirty, "b.py": dirty})
        _git("init", "-q", cwd=tmp_path)
        _git("add", ".", cwd=tmp_path)
        _git("commit", "-q", "-m", "seed", cwd=tmp_path)
        (tmp_path / "b.py").write_text(dirty + "\n# touched\n")

        monkeypatch.chdir(tmp_path)
        assert main(["lint", ".", "--changed-only", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert {f["path"] for f in report["findings"]} == {"b.py"}

    def test_clean_when_nothing_changed(self, tmp_path, monkeypatch, capsys):
        dirty = "import numpy as np\n\ndef f():\n    return np.random.rand()\n"
        write_tree(tmp_path, {"a.py": dirty})
        _git("init", "-q", cwd=tmp_path)
        _git("add", ".", cwd=tmp_path)
        _git("commit", "-q", "-m", "seed", cwd=tmp_path)

        monkeypatch.chdir(tmp_path)
        assert main(["lint", ".", "--changed-only"]) == 0

    def test_outside_git_falls_back_to_full_run(self, tmp_path, monkeypatch, capsys):
        dirty = "import numpy as np\n\ndef f():\n    return np.random.rand()\n"
        write_tree(tmp_path, {"a.py": dirty})
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nonexistent-git-dir"))
        assert main(["lint", ".", "--changed-only"]) == 1
        assert "R001" in capsys.readouterr().out
