"""Analyzer framework: suppressions, fingerprints, registry, parsing."""

import textwrap

from repro.analysis import (
    ModuleContext,
    analyze_source,
    registered_rules,
    rule_metadata,
)

R001_SNIPPET = """
    import numpy as np

    def sample():
        return np.random.rand(3)
    """


def dedent(source):
    return textwrap.dedent(source)


class TestSuppressions:
    def test_inline_disable_silences_the_rule(self):
        source = dedent(
            """
            import numpy as np

            def sample():
                return np.random.rand(3)  # reprolint: disable=R001
            """
        )
        assert not analyze_source(source)

    def test_disable_lists_multiple_rules(self):
        source = dedent(
            """
            import numpy as np

            def sample():
                return np.random.rand(3) == 1.0  # reprolint: disable=R001,R004
            """
        )
        assert not analyze_source(source)

    def test_disable_all_wildcard(self):
        source = dedent(
            """
            import numpy as np

            def sample():
                return np.random.rand(3)  # reprolint: disable=all
            """
        )
        assert not analyze_source(source)

    def test_unrelated_disable_does_not_silence(self):
        source = dedent(
            """
            import numpy as np

            def sample():
                return np.random.rand(3)  # reprolint: disable=R002
            """
        )
        assert [f.rule for f in analyze_source(source)] == ["R001"]

    def test_suppression_on_any_line_of_the_statement(self):
        source = dedent(
            """
            import numpy as np

            def sample():
                return np.random.normal(  # reprolint: disable=R001
                    0.0,
                    1.0,
                )
            """
        )
        assert not analyze_source(source)


class TestFingerprints:
    def test_stable_across_unrelated_line_shifts(self):
        before = analyze_source(dedent(R001_SNIPPET))
        shifted = analyze_source("# a new leading comment\n" + dedent(R001_SNIPPET))
        assert [f.fingerprint for f in before] == [f.fingerprint for f in shifted]
        assert before[0].line != shifted[0].line

    def test_identical_lines_get_distinct_fingerprints(self):
        source = dedent(
            """
            import numpy as np

            def a():
                return np.random.rand(3)

            def b():
                return np.random.rand(3)
            """
        )
        findings = analyze_source(source)
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint

    def test_path_is_part_of_identity(self):
        a = analyze_source(dedent(R001_SNIPPET), path="a.py")
        b = analyze_source(dedent(R001_SNIPPET), path="b.py")
        assert a[0].fingerprint != b[0].fingerprint


class TestRegistry:
    def test_six_rules_registered(self):
        assert [cls.id for cls in registered_rules()] == [
            "R001",
            "R002",
            "R003",
            "R004",
            "R005",
            "R006",
        ]

    def test_graph_rules_registered(self):
        from repro.analysis import registered_graph_rules

        assert [cls.id for cls in registered_graph_rules()] == [
            "R007",
            "R008",
            "R009",
            "R010",
            "R011",
            "R012",
            "R013",
            "R014",
            "R015",
            "R016",
            "R017",
            "R018",
            "R019",
            "R020",
            "R021",
        ]

    def test_metadata_is_complete(self):
        ids = [rule["id"] for rule in rule_metadata()]
        assert ids == sorted(ids)
        assert {"R001", "R007", "R011", "R012", "R016", "R017", "R021"} <= set(ids)
        for rule in rule_metadata():
            assert rule["id"].startswith("R")
            assert rule["title"]
            assert rule["rationale"]
            assert rule["category"] in (
                "per-file",
                "whole-program",
                "concurrency",
                "taint",
            )


class TestParsing:
    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings = analyze_source("def broken(:\n    pass\n")
        assert [f.rule for f in findings] == ["E000"]
        assert "parse" in findings[0].message

    def test_test_detection_by_path(self):
        assert ModuleContext("tests/net/helper.py", "x = 1\n").is_test
        assert ModuleContext("test_anything.py", "x = 1\n").is_test
        assert not ModuleContext("src/repro/core/config.py", "x = 1\n").is_test

    def test_analyze_source_restricts_to_given_rules(self):
        source = dedent(R001_SNIPPET)
        rules = [cls for cls in registered_rules() if cls.id == "R002"]
        assert not analyze_source(source, rules=rules)


class TestSpawnSeedsExemption:
    def test_core_seeding_lints_clean(self):
        from pathlib import Path

        seeding = Path(__file__).resolve().parents[2] / "src/repro/core/seeding.py"
        findings = analyze_source(seeding.read_text(), path="src/repro/core/seeding.py")
        assert findings == []
