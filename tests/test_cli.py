"""CLI: parser wiring, info/demo/verify behaviour."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.enroll == 12
        assert args.seed == 0

    def test_verify_roles(self):
        for role in ("genuine", "attack", "replay", "adaptive"):
            args = build_parser().parse_args(["verify", "--role", role])
            assert args.role == role

    def test_verify_rejects_unknown_role(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--role", "martian"])

    def test_figures_options(self):
        args = build_parser().parse_args(["figures", "--out", "x", "--only", "fig11"])
        assert args.out == "x"
        assert args.only == ["fig11"]

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.role == "genuine"
        assert args.sessions == 2
        assert args.jobs == 1
        assert args.trace is None
        assert args.metrics is None
        assert args.perf is False

    def test_simulate_options(self):
        args = build_parser().parse_args(
            ["simulate", "--role", "attack", "--jobs", "2",
             "--trace", "t.jsonl", "--metrics", "prom", "--perf"]
        )
        assert args.role == "attack"
        assert args.jobs == 2
        assert args.trace == "t.jsonl"
        assert args.metrics == "prom"
        assert args.perf is True

    def test_simulate_rejects_unknown_metrics_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--metrics", "xml"])

    def test_trace_wiring(self):
        args = build_parser().parse_args(["trace", "t.jsonl", "--format", "json"])
        assert args.trace == "t.jsonl"
        assert args.format == "json"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.sessions == 8
        assert args.tenants == 3
        assert args.realtime is False
        assert args.chaos == 0.0  # reprolint: disable=R004

    def test_loadtest_options(self):
        args = build_parser().parse_args(
            ["loadtest", "--sessions", "50", "--no-serial-check",
             "--json", "out.json"]
        )
        assert args.sessions == 50
        assert args.no_serial_check is True
        assert args.json == "out.json"

    def test_loadtest_protocol_options(self):
        args = build_parser().parse_args(
            ["loadtest", "--protocol", "0.5", "--protocol-replay", "0.3",
             "--protocol-stale", "0.2"]
        )
        assert args.protocol == 0.5  # reprolint: disable=R004
        assert args.protocol_replay == 0.3  # reprolint: disable=R004
        assert args.protocol_stale == 0.2  # reprolint: disable=R004

    def test_protocol_defaults(self):
        args = build_parser().parse_args(["protocol"])
        assert args.matrix is False
        assert args.seed == 211
        assert args.tenant == "tenant-demo"


class TestInfo:
    def test_info_prints_paper_constants(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "lof_threshold" in out
        assert "sample_rate_hz" in out
        assert "ICDCS 2020" in out


@pytest.mark.slow
class TestEndToEnd:
    def test_verify_genuine_exit_zero(self):
        assert main(["verify", "--role", "genuine", "--enroll", "10", "--seed", "3"]) == 0

    def test_verify_attack_exit_one(self):
        assert main(["verify", "--role", "attack", "--enroll", "10", "--seed", "3"]) == 1

    def test_demo_runs(self, capsys):
        assert main(["demo", "--enroll", "10"]) == 0
        out = capsys.readouterr().out
        assert "ATTACKER" in out
        assert "live person" in out

    def test_simulate_traces_every_pipeline_stage(self, tmp_path, capsys):
        from repro.obs import PIPELINE_STAGES, read_trace

        trace = str(tmp_path / "trace.jsonl")
        assert main(
            ["simulate", "--sessions", "2", "--enroll", "8", "--jobs", "2",
             "--seed", "3", "--trace", trace, "--metrics", "json"]
        ) == 0
        records = list(read_trace(trace))  # read_trace validates the schema
        stages = {r["stage"] for r in records}
        assert set(PIPELINE_STAGES) <= stages
        out = capsys.readouterr().out
        assert '"name": "verifier_sessions_total"' in out
        # The trace aggregator consumes what simulate wrote.
        assert main(["trace", trace]) == 0

    def test_serve_reports_slo(self, capsys):
        assert main(["serve", "--sessions", "2", "--tenants", "1",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "virtual clock" in out
        assert "admission rate" in out
        assert "task failures: 0" in out

    def test_protocol_demo_prints_all_four_verdicts(self, capsys):
        assert main(["protocol"]) == 0
        out = capsys.readouterr().out
        assert "verify=True" in out
        assert "verify=False" in out  # the tampered ack is rejected
        for outcome in ("bound", "replay", "stale", "unbound"):
            assert f"outcome={outcome}" in out

    def test_loadtest_writes_identity_checked_json(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "service.json")
        assert main(["loadtest", "--sessions", "6", "--tenants", "2",
                     "--arrival-rate", "4.0", "--chaos", "0.3",
                     "--seed", "11", "--json", path]) == 0
        payload = json.loads(open(path).read())
        assert payload["schema"] == "bench-service-v1"
        assert payload["serial_identity"] is True
        assert payload["task_failures"] == 0
        assert "IDENTICAL" in capsys.readouterr().out
