"""CLI: parser wiring, info/demo/verify behaviour."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.enroll == 12
        assert args.seed == 0

    def test_verify_roles(self):
        for role in ("genuine", "attack", "replay", "adaptive"):
            args = build_parser().parse_args(["verify", "--role", role])
            assert args.role == role

    def test_verify_rejects_unknown_role(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--role", "martian"])

    def test_figures_options(self):
        args = build_parser().parse_args(["figures", "--out", "x", "--only", "fig11"])
        assert args.out == "x"
        assert args.only == ["fig11"]


class TestInfo:
    def test_info_prints_paper_constants(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "lof_threshold" in out
        assert "sample_rate_hz" in out
        assert "ICDCS 2020" in out


@pytest.mark.slow
class TestEndToEnd:
    def test_verify_genuine_exit_zero(self):
        assert main(["verify", "--role", "genuine", "--enroll", "10", "--seed", "3"]) == 0

    def test_verify_attack_exit_one(self):
        assert main(["verify", "--role", "attack", "--enroll", "10", "--seed", "3"]) == 1

    def test_demo_runs(self, capsys):
        assert main(["demo", "--enroll", "10"]) == 0
        out = capsys.readouterr().out
        assert "ATTACKER" in out
        assert "live person" in out
