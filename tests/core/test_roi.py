"""Nasal-bridge ROI geometry (Fig. 5)."""

import pytest

from repro.core.roi import MIN_ROI_SIDE, nasal_bridge_roi
from repro.vision.geometry import Point
from repro.vision.landmarks import FaceLandmarks


def _landmarks(bridge_y=40.0, tip_y=48.0, x=50.0) -> FaceLandmarks:
    bridge = tuple(Point(x, bridge_y - 10 + i * (10.0 / 3)) for i in range(3)) + (
        Point(x, bridge_y),
    )
    tip = tuple(Point(x + dx, tip_y) for dx in (-4, -2, 0, 2, 4))
    return FaceLandmarks(
        nasal_bridge=bridge,
        nasal_tip=tip,
        left_eye=Point(x - 15, bridge_y - 12),
        right_eye=Point(x + 15, bridge_y - 12),
        mouth=Point(x, tip_y + 20),
    )


class TestRoiGeometry:
    def test_square_side_is_bridge_to_tip_distance(self):
        roi = nasal_bridge_roi(_landmarks(bridge_y=40.0, tip_y=48.0))
        assert roi.width == pytest.approx(8.0)
        assert roi.height == pytest.approx(8.0)

    def test_centered_on_lower_bridge(self):
        roi = nasal_bridge_roi(_landmarks(bridge_y=40.0, tip_y=48.0, x=50.0))
        assert roi.center.x == pytest.approx(50.0)
        assert roi.center.y == pytest.approx(40.0)

    def test_scales_with_face_size(self):
        small = nasal_bridge_roi(_landmarks(bridge_y=40.0, tip_y=44.0))
        large = nasal_bridge_roi(_landmarks(bridge_y=40.0, tip_y=56.0))
        assert large.area > small.area

    def test_minimum_side_enforced(self):
        tiny = nasal_bridge_roi(_landmarks(bridge_y=40.0, tip_y=40.5))
        assert tiny.width == pytest.approx(MIN_ROI_SIDE)

    def test_absolute_value_of_vertical_distance(self):
        # Tip above bridge (upside-down camera) still yields a valid square.
        roi = nasal_bridge_roi(_landmarks(bridge_y=48.0, tip_y=40.0))
        assert roi.width == pytest.approx(8.0)
