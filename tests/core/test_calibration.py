"""Threshold calibration from the legitimate bank alone."""

import numpy as np
import pytest

from repro.core.calibration import (
    calibrate_threshold,
    leave_one_out_scores,
)


def _bank(n=30, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    center = np.array([1.0, 1.0, 0.95, 0.08])
    return center + spread * rng.normal(size=(n, 4))


class TestLeaveOneOut:
    def test_one_score_per_vector(self):
        bank = _bank()
        scores = leave_one_out_scores(bank)
        assert scores.shape == (30,)

    def test_tight_cluster_scores_near_one(self):
        scores = leave_one_out_scores(_bank(spread=0.01))
        assert np.median(scores) < 1.5

    def test_planted_outlier_scores_highest(self):
        bank = _bank()
        bank[7] = np.array([0.2, 0.1, -0.5, 1.5])
        scores = leave_one_out_scores(bank)
        assert np.argmax(scores) == 7
        assert scores[7] > 5.0

    def test_needs_three_vectors(self):
        with pytest.raises(ValueError):
            leave_one_out_scores(_bank(n=2))


class TestCalibration:
    def test_threshold_meets_target_frr(self):
        bank = _bank(n=40)
        result = calibrate_threshold(bank, target_frr=0.1)
        assert result.estimated_frr <= 0.1 + 1e-9

    def test_tighter_target_raises_threshold(self):
        bank = _bank(n=40, spread=0.1)
        loose = calibrate_threshold(bank, target_frr=0.2)
        tight = calibrate_threshold(bank, target_frr=0.02)
        assert tight.threshold >= loose.threshold

    def test_floor_applied(self):
        # A hyper-tight bank wants a sub-1.5 threshold; the floor holds.
        result = calibrate_threshold(_bank(spread=0.001), target_frr=0.5)
        assert result.threshold >= 1.5

    def test_scores_carried_in_result(self):
        result = calibrate_threshold(_bank())
        assert result.loo_scores.shape == (30,)

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_threshold(_bank(), target_frr=0.0)
        with pytest.raises(ValueError):
            calibrate_threshold(_bank(), min_threshold=0.5)

    def test_calibrated_threshold_works_against_attacks(self):
        """The calibrated tau must still separate attack-like vectors."""
        bank = _bank(n=40)
        result = calibrate_threshold(bank, target_frr=0.08)
        from repro.core.lof import LocalOutlierFactor

        model = LocalOutlierFactor(5).fit(bank)
        attacks = np.array(
            [[0.3, 0.5, -0.4, 0.9], [0.0, 0.0, -0.8, 1.2], [0.5, 1.0, 0.1, 0.6]]
        )
        assert (model.score_samples(attacks) > result.threshold).all()
