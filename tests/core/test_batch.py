"""Unit tests for the structure-of-arrays batch container and kernels."""

import numpy as np
import pytest

from repro.core.batch import (
    ClipBatch,
    dtw_distance_batch,
    find_peaks_batch,
    group_by_length,
    moving_rms_batch,
    moving_variance_batch,
    reflect_convolve_batch,
    threshold_filter_batch,
)


class TestClipBatch:
    def test_from_signals_pads_and_masks(self):
        batch = ClipBatch.from_signals([[1.0, 2.0, 3.0], [4.0], []])
        assert batch.data.shape == (3, 3)
        assert batch.lengths.tolist() == [3, 1, 0]
        assert batch.max_length == 3
        assert len(batch) == 3
        # Padding beyond each clip is set to literal zero.
        assert batch.data[1, 1] == 0.0  # reprolint: disable=R004

    def test_row_returns_trimmed_view(self):
        batch = ClipBatch.from_signals([[1.0, 2.0], [3.0]])
        assert np.array_equal(batch.row(0), [1.0, 2.0])
        assert np.array_equal(batch.row(1), [3.0])
        rows = batch.rows()
        assert [r.size for r in rows] == [2, 1]

    def test_empty_batch(self):
        batch = ClipBatch.from_signals([])
        assert len(batch) == 0
        assert batch.max_length == 0
        assert batch.rows() == []

    def test_rejects_multidimensional_signal(self):
        with pytest.raises(ValueError):
            ClipBatch.from_signals([np.zeros((2, 2))])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            ClipBatch(data=np.zeros((2, 3)), lengths=np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            ClipBatch(data=np.zeros((2, 3)), lengths=np.array([1, 4]))
        with pytest.raises(ValueError):
            ClipBatch(data=np.zeros(3), lengths=np.array([3]))

    def test_group_by_length_orders_ascending(self):
        groups = group_by_length(np.array([5, 2, 5, 0, 2]))
        assert [(length, idx.tolist()) for length, idx in groups] == [
            (0, [3]),
            (2, [1, 4]),
            (5, [0, 2]),
        ]


class TestKernelValidation:
    def test_reflect_convolve_rejects_bad_inputs(self):
        rows = np.zeros((1, 4))
        with pytest.raises(ValueError):
            reflect_convolve_batch(np.zeros(4), np.ones(3))  # not 2-D
        with pytest.raises(ValueError):
            reflect_convolve_batch(rows, np.ones((2, 2)))  # kernel not 1-D
        with pytest.raises(ValueError):
            reflect_convolve_batch(rows, np.array([]))  # empty kernel

    def test_moving_windows_reject_nonpositive(self):
        rows = np.zeros((1, 4))
        with pytest.raises(ValueError):
            moving_variance_batch(rows, 0)
        with pytest.raises(ValueError):
            moving_rms_batch(rows, 0)

    def test_threshold_filter_batch_requires_2d(self):
        with pytest.raises(ValueError):
            threshold_filter_batch(np.zeros(4), 1.0)

    def test_zero_length_rows_pass_through(self):
        rows = np.zeros((2, 0))
        assert reflect_convolve_batch(rows, np.ones(3) / 3).shape == (2, 0)
        assert moving_variance_batch(rows, 4).shape == (2, 0)
        assert moving_rms_batch(rows, 4).shape == (2, 0)
        assert threshold_filter_batch(rows, 0.5).shape == (2, 0)
        assert find_peaks_batch(rows, 0.1) == [[], []]


class TestDtwDistanceBatch:
    def test_known_distances(self):
        xs = [np.array([0.0, 1.0, 2.0]), np.array([1.0, 1.0])]
        ys = [np.array([0.0, 1.0, 2.0]), np.array([3.0])]
        assert dtw_distance_batch(xs, ys).tolist() == [0.0, 4.0]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            dtw_distance_batch([np.array([1.0])], [])

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            dtw_distance_batch([np.zeros((2, 2))], [np.array([1.0])])

    def test_empty_batch(self):
        assert dtw_distance_batch([], []).size == 0
