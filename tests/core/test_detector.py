"""LivenessDetector: training protocol and clip verification."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import DetectionResult, LivenessDetector
from repro.core.features import FeatureVector


def _genuine_bank(n=20, seed=0):
    rng = np.random.default_rng(seed)
    return [
        FeatureVector(
            z1=1.0,
            z2=float(rng.choice([1.0, 1.0, 1.0, 0.667])),
            z3=float(rng.uniform(0.9, 1.0)),
            z4=float(rng.uniform(0.02, 0.2)),
        )
        for _ in range(n)
    ]


ATTACK_FEATURES = FeatureVector(z1=0.3, z2=0.5, z3=-0.4, z4=0.9)
GENUINE_FEATURES = FeatureVector(z1=1.0, z2=1.0, z3=0.97, z4=0.06)


class TestTraining:
    def test_fit_from_feature_vectors(self):
        det = LivenessDetector().fit(_genuine_bank())
        assert det.is_trained
        assert det.training_size == 20

    def test_fit_from_array(self):
        X = np.stack([fv.as_array() for fv in _genuine_bank()])
        det = LivenessDetector().fit(X)
        assert det.training_size == 20

    def test_fit_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            LivenessDetector().fit(np.zeros((10, 3)))

    def test_verify_before_training_raises(self):
        with pytest.raises(RuntimeError):
            LivenessDetector().verify_features(GENUINE_FEATURES)

    def test_fit_from_clips(self, step_signal, reflected_signal):
        clips = [(step_signal, reflected_signal)] * 3
        det = LivenessDetector().fit_from_clips(clips)
        assert det.is_trained

    def test_fit_from_too_few_clips_raises(self, step_signal, reflected_signal):
        with pytest.raises(ValueError):
            LivenessDetector().fit_from_clips([(step_signal, reflected_signal)])


class TestVerification:
    @pytest.fixture()
    def trained(self):
        return LivenessDetector().fit(_genuine_bank())

    def test_genuine_features_accepted(self, trained):
        result = trained.verify_features(GENUINE_FEATURES)
        assert result.accepted
        assert not result.rejected

    def test_attack_features_rejected(self, trained):
        result = trained.verify_features(ATTACK_FEATURES)
        assert result.rejected
        assert result.lof_score > 3.0

    def test_threshold_comes_from_config(self):
        lenient = LivenessDetector(DetectorConfig(lof_threshold=1e6)).fit(_genuine_bank())
        assert lenient.verify_features(ATTACK_FEATURES).accepted

    def test_result_carries_evidence(self, trained):
        result = trained.verify_features(GENUINE_FEATURES)
        assert result.features == GENUINE_FEATURES
        assert result.threshold == pytest.approx(3.0)

    def test_verify_clip_end_to_end(self, step_signal, reflected_signal):
        det = LivenessDetector().fit(_genuine_bank())
        result = det.verify_clip(step_signal, reflected_signal)
        assert isinstance(result, DetectionResult)
        assert result.extraction is not None
        assert result.accepted

    def test_verify_clip_rejects_uncorrelated(self, step_signal):
        det = LivenessDetector().fit(_genuine_bank())
        fake = np.full(150, 140.0)
        fake[25:] += 25.0
        fake[80:] -= 35.0
        assert det.verify_clip(step_signal, fake).rejected

    def test_score_samples_matches_per_vector_scores(self, trained):
        batch = np.stack([GENUINE_FEATURES.as_array(), ATTACK_FEATURES.as_array()])
        scores = trained.score_samples(batch)
        assert scores.shape == (2,)
        assert scores[0] == trained.score(GENUINE_FEATURES)
        assert scores[1] == trained.score(ATTACK_FEATURES)

    def test_score_samples_before_training_raises(self):
        with pytest.raises(RuntimeError):
            LivenessDetector().score_samples(np.zeros((2, 4)))
