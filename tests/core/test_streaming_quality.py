"""Quality gating of streaming attempts: INCONCLUSIVE instead of wrong.

These tests pin the bugfix/robustness contract of the gated streaming
verifier: channel damage (landmark dropout, frozen video, missing
challenges) must surface as ``INCONCLUSIVE`` — never as a false
``ATTACKER`` — and leading landmark misses must not fabricate a
luminance step at clip start.
"""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import DetectionResult, LivenessDetector
from repro.core.features import FeatureVector
from repro.core.streaming import (
    AttemptVerdict,
    CallStatus,
    ClipQuality,
    GatedAttempt,
    QualityIssue,
    StreamingVerifier,
)
from repro.core.voting import VotingCombiner
from repro.experiments.profiles import Environment
from repro.experiments.simulate import simulate_genuine_session
from repro.video.frame import Frame, blank_frame


@pytest.fixture(scope="module")
def env():
    return Environment(frame_size=(72, 72), verifier_frame_size=(48, 48))


@pytest.fixture(scope="module")
def trained_detector():
    rng = np.random.default_rng(0)
    bank = [
        FeatureVector(
            z1=1.0,
            z2=float(rng.choice([1.0, 1.0, 1.0, 0.667])),
            z3=float(rng.uniform(0.9, 1.0)),
            z4=float(rng.uniform(0.02, 0.2)),
        )
        for _ in range(20)
    ]
    return LivenessDetector(DetectorConfig()).fit(bank)


def _blackout(frame: Frame) -> Frame:
    return Frame(
        pixels=frame.pixels * 0.0,
        timestamp=frame.timestamp,
        metadata=dict(frame.metadata),
    )


def _result(rejected: bool) -> DetectionResult:
    return DetectionResult(
        features=FeatureVector(z1=1.0, z2=1.0, z3=1.0, z4=0.1),
        lof_score=10.0 if rejected else 1.0,
        threshold=3.0,
    )


def _gated(rejected: bool, conclusive: bool = True) -> GatedAttempt:
    quality = ClipQuality(
        landmark_hit_fraction=1.0 if conclusive else 0.0,
        frozen_fraction=0.0,
        transmitted_changes=2,
        received_changes=2,
        issues=() if conclusive else (QualityIssue.LOW_LANDMARK_COVERAGE,),
    )
    return GatedAttempt(result=_result(rejected), quality=quality)


class TestAllMissClip:
    def test_first_clip_without_landmarks_is_inconclusive(self, trained_detector):
        """A clip whose every received frame lacks a face must not read
        as an attack — the channel delivered no evidence at all."""
        verifier = StreamingVerifier(trained_detector)
        config = trained_detector.config
        attempt = None
        for i in range(config.samples_per_clip):
            t = i / config.sample_rate_hz
            # Transmitted luminance varies (so the screen is "alive");
            # received frames are black — the landmark detector misses.
            transmitted = blank_frame(16, 16, value=0.4 + 0.2 * (i % 50 == 25), timestamp=t)
            received = blank_frame(48, 48, value=0.0, timestamp=t)
            attempt = verifier.push(transmitted, received) or attempt
        assert attempt is not None
        assert not attempt.conclusive
        assert attempt.verdict is AttemptVerdict.INCONCLUSIVE
        assert QualityIssue.LOW_LANDMARK_COVERAGE in attempt.quality.issues
        assert attempt.quality.landmark_hit_fraction == pytest.approx(0.0)
        state = verifier.state
        assert state.status is CallStatus.INCONCLUSIVE
        assert state.verdict is None
        assert state.conclusive_attempts == 0

    def test_flat_transmitted_clip_has_no_challenges(self, trained_detector, env):
        """A clip in which Alice's screen never changed carries no
        challenge; whatever the peer sent back proves nothing."""
        verifier = StreamingVerifier(trained_detector)
        record = simulate_genuine_session(duration_s=15.0, seed=58, env=env)
        attempt = None
        for i, (_, r_frame) in enumerate(zip(record.transmitted, record.received)):
            flat = blank_frame(16, 16, value=0.5, timestamp=i * 0.1)
            attempt = verifier.push(flat, r_frame) or attempt
        assert attempt is not None
        assert not attempt.conclusive
        assert QualityIssue.NO_CHALLENGES in attempt.quality.issues


class TestLeadingMissBackfill:
    def test_leading_misses_do_not_fabricate_a_change(self, trained_detector, env):
        """Blacking out the first received frames (tracker not locked
        yet) must not create a phantom luminance step: the clip keeps
        the same verdict and received change count as the clean run."""
        record = simulate_genuine_session(duration_s=15.0, seed=59, env=env)
        clean = StreamingVerifier(trained_detector)
        patched = StreamingVerifier(trained_detector)
        clean_attempt = patched_attempt = None
        for i, (t_frame, r_frame) in enumerate(
            zip(record.transmitted, record.received)
        ):
            clean_attempt = clean.push(t_frame, r_frame) or clean_attempt
            if i < 8:
                r_frame = _blackout(r_frame)
            patched_attempt = patched.push(t_frame, r_frame) or patched_attempt
        assert clean_attempt is not None and patched_attempt is not None
        clean_changes = clean_attempt.result.extraction.received.change_count
        patched_changes = patched_attempt.result.extraction.received.change_count
        assert patched_changes == clean_changes
        assert patched_attempt.result.accepted == clean_attempt.result.accepted
        assert patched_attempt.quality.landmark_hit_fraction < 1.0


class TestVoteWindowWithInconclusive:
    def test_inconclusive_attempts_hold_slots_but_never_vote(
        self, trained_detector
    ):
        """With vote_window=3, two old rejects must stop counting once
        three newer attempts (even inconclusive ones) displace them."""
        verifier = StreamingVerifier(trained_detector, vote_window=3)
        verifier._attempts.extend(
            [_gated(rejected=True), _gated(rejected=True)]
        )
        assert verifier.state.status is CallStatus.ATTACKER
        verifier._attempts.extend(
            [
                _gated(rejected=False),
                _gated(rejected=True, conclusive=False),
                _gated(rejected=True, conclusive=False),
            ]
        )
        state = verifier.state
        # Window now holds [accept, inconclusive, inconclusive]: one
        # conclusive accept, zero reject votes.
        assert state.inconclusive_attempts == 2
        assert state.conclusive_attempts == 1
        assert state.verdict.reject_votes == 0
        assert state.status is CallStatus.LIVE

    def test_all_inconclusive_window_reports_inconclusive(self, trained_detector):
        verifier = StreamingVerifier(trained_detector, vote_window=2)
        verifier._attempts.extend(
            [
                _gated(rejected=True),  # conclusive, but about to leave the window
                _gated(rejected=True, conclusive=False),
                _gated(rejected=True, conclusive=False),
            ]
        )
        state = verifier.state
        assert state.status is CallStatus.INCONCLUSIVE
        assert state.verdict is None


class TestCombineConclusive:
    def test_empty_conclusive_set_returns_none(self):
        combiner = VotingCombiner(0.7)
        assert combiner.combine_conclusive([_result(True)], [False]) is None

    def test_only_conclusive_attempts_enter_the_denominator(self):
        combiner = VotingCombiner(0.7)
        results = [_result(True), _result(True), _result(False)]
        # All conclusive: 2/3 rejects < 0.7 -> not an attacker.
        assert not combiner.combine(results).is_attacker
        # Gate the accept out: 2/2 rejects > 0.7 -> attacker.
        verdict = combiner.combine_conclusive(results, [True, True, False])
        assert verdict.is_attacker
        assert verdict.total_votes == 2

    def test_length_mismatch_rejected(self):
        combiner = VotingCombiner(0.7)
        with pytest.raises(ValueError):
            combiner.combine_conclusive([_result(True)], [True, False])
