"""The redesigned batch API surface: ``verify_clips`` as the documented
entry point, batch extraction exported from :mod:`repro.api`, and the
per-clip wrappers kept alive behind :class:`DeprecationWarning`."""

import warnings

import numpy as np
import pytest

import repro
import repro.api
from repro.core.config import DetectorConfig
from repro.core.detector import LivenessDetector, verify_clips
from repro.core.features import (
    extract_features,
    extract_features_batch,
    features_from_signals,
    features_from_signals_batch,
)
from repro.core.pipeline import ChatVerifier
from repro.core.preprocessing import preprocess
from repro.experiments.simulate import simulate_genuine_session


def _make_pairs(count, seed=17):
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        length = int(rng.integers(60, 160))
        t_lum = rng.uniform(80.0, 140.0, length)
        r_lum = rng.uniform(0.2, 0.9, length)
        pairs.append((t_lum, r_lum))
    return pairs


class TestApiSurface:
    def test_batch_names_exported_from_api_and_root(self):
        for module in (repro, repro.api):
            assert module.ClipBatch is not None
            assert module.extract_features_batch is extract_features_batch
            assert module.verify_clips is verify_clips
            for name in ("ClipBatch", "extract_features_batch", "verify_clips"):
                assert name in module.__all__

    def test_deprecated_per_clip_wrapper_still_exported(self):
        assert repro.api.extract_features is extract_features
        assert "extract_features" in repro.api.__all__


class TestDeprecatedWrappers:
    def test_extract_features_warns_and_matches_batch(self):
        (t_lum, r_lum), = _make_pairs(1)
        with pytest.warns(DeprecationWarning, match="extract_features_batch"):
            old = extract_features(t_lum, r_lum)
        new = extract_features_batch([(t_lum, r_lum)])[0]
        assert old.features == new.features
        assert old.matches == new.matches

    def test_features_from_signals_warns_and_matches_batch(self):
        (t_lum, r_lum), = _make_pairs(1, seed=23)
        config = DetectorConfig()
        pre_t = preprocess(t_lum, config, config.peak_prominence_screen)
        pre_r = preprocess(r_lum, config, config.peak_prominence_face)
        with pytest.warns(DeprecationWarning, match="features_from_signals_batch"):
            old = features_from_signals(pre_t, pre_r)
        new = features_from_signals_batch([pre_t], [pre_r])[0]
        assert old.features == new.features

    def test_batch_entry_points_do_not_warn(self):
        pairs = _make_pairs(2)
        config = DetectorConfig()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            extract_features_batch(pairs, config)


class TestVerifyClips:
    def test_matches_per_clip_verify_loop(self):
        config = DetectorConfig()
        detector = LivenessDetector(config)
        detector.fit_from_clips(_make_pairs(8, seed=5))
        probes = _make_pairs(4, seed=6)
        batched = verify_clips(probes, detector)
        for (t_lum, r_lum), got in zip(probes, batched):
            want = detector.verify_clip(t_lum, r_lum)
            assert got.features == want.features
            assert got.lof_score == want.lof_score
            assert got.accepted == want.accepted

    def test_empty_batch_returns_empty(self):
        detector = LivenessDetector(DetectorConfig())
        assert verify_clips([], detector) == []

    def test_carries_extraction_on_core_path(self):
        detector = LivenessDetector(DetectorConfig())
        detector.fit_from_clips(_make_pairs(8, seed=5))
        results = verify_clips(_make_pairs(2, seed=9), detector)
        assert all(r.extraction is not None for r in results)


class TestChatVerifierBatchPath:
    def test_clip_features_matches_session_enrollment_bank(self):
        verifier = ChatVerifier()
        records = [simulate_genuine_session(seed=s, duration_s=16.0) for s in range(2)]
        verifier.enroll(records)
        assert verifier.detector.is_trained
        record = records[0]
        t_clip, r_clip = verifier._paired_clips(record.transmitted, record.received)[0]
        # Landmark tracking is stateful, so both paths start from a fresh
        # verifier to see the identical signal extraction.
        fv = ChatVerifier().clip_features(t_clip, r_clip)
        t_lum, r_lum = ChatVerifier().extract_signals(t_clip, r_clip)
        want = extract_features_batch([(t_lum, r_lum)], verifier.config)[0].features
        assert fv == want
