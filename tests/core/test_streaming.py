"""StreamingVerifier: incremental detection during a live call."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import LivenessDetector
from repro.core.features import FeatureVector
from repro.core.streaming import CallStatus, StreamingVerifier
from repro.experiments.profiles import Environment
from repro.experiments.simulate import simulate_attack_session, simulate_genuine_session


@pytest.fixture(scope="module")
def env():
    return Environment(frame_size=(72, 72), verifier_frame_size=(48, 48))


@pytest.fixture(scope="module")
def trained_detector():
    rng = np.random.default_rng(0)
    bank = [
        FeatureVector(
            z1=1.0,
            z2=float(rng.choice([1.0, 1.0, 1.0, 0.667])),
            z3=float(rng.uniform(0.9, 1.0)),
            z4=float(rng.uniform(0.02, 0.2)),
        )
        for _ in range(20)
    ]
    return LivenessDetector(DetectorConfig()).fit(bank)


def _feed(verifier, record):
    results = []
    for t_frame, r_frame in zip(record.transmitted, record.received):
        result = verifier.push(t_frame, r_frame)
        if result is not None:
            results.append(result)
    return results


class TestLifecycle:
    def test_requires_trained_detector(self):
        with pytest.raises(ValueError):
            StreamingVerifier(LivenessDetector())

    def test_gathering_before_first_attempt(self, trained_detector):
        verifier = StreamingVerifier(trained_detector)
        assert verifier.state.status is CallStatus.GATHERING
        assert verifier.state.verdict is None

    def test_attempt_completes_every_clip_duration(self, trained_detector, env):
        verifier = StreamingVerifier(trained_detector)
        record = simulate_genuine_session(duration_s=30.0, seed=50, env=env)
        results = _feed(verifier, record)
        assert len(results) == 2  # 30 s = two 15 s clips
        assert verifier.state.samples_buffered == 0

    def test_reset_clears_everything(self, trained_detector, env):
        verifier = StreamingVerifier(trained_detector)
        record = simulate_genuine_session(duration_s=15.0, seed=51, env=env)
        _feed(verifier, record)
        verifier.reset()
        assert verifier.state.status is CallStatus.GATHERING
        assert verifier.all_attempts == ()

    def test_reset_is_bit_identical_to_fresh(self, trained_detector, env):
        """A recycled verifier must replay a call exactly like a new one.

        The service layer pools verifiers across sessions, so any state
        surviving reset() — notably the landmark detector's jitter RNG —
        would make verdicts depend on which pooled instance served the
        session.  Run the same recording through a fresh verifier and
        through one that already served a different call and was reset;
        every score and quality grade must match bit-for-bit.
        """
        first = simulate_genuine_session(duration_s=15.0, seed=57, env=env)
        second = simulate_attack_session(duration_s=15.0, seed=58, env=env)

        recycled = StreamingVerifier(trained_detector)
        _feed(recycled, first)  # a prior call advances all mutable state
        recycled.reset()
        _feed(recycled, second)

        fresh = StreamingVerifier(trained_detector)
        _feed(fresh, second)

        assert len(recycled.gated_attempts) == len(fresh.gated_attempts)
        for ours, theirs in zip(recycled.gated_attempts, fresh.gated_attempts):
            assert ours.result.lof_score == theirs.result.lof_score
            assert ours.result.features == theirs.result.features
            assert ours.quality == theirs.quality
        assert recycled.state.status is fresh.state.status


class TestJudgement:
    def test_genuine_call_stays_live(self, trained_detector, env):
        verifier = StreamingVerifier(trained_detector)
        record = simulate_genuine_session(duration_s=30.0, seed=52, env=env)
        _feed(verifier, record)
        assert verifier.state.status in (CallStatus.LIVE, CallStatus.SUSPICIOUS)

    def test_attack_call_flagged(self, trained_detector, env):
        verifier = StreamingVerifier(trained_detector)
        record = simulate_attack_session(duration_s=30.0, seed=53, env=env)
        _feed(verifier, record)
        assert verifier.state.status is CallStatus.ATTACKER

    def test_alert_fires_once(self, trained_detector, env):
        alerts = []
        verifier = StreamingVerifier(trained_detector, on_alert=alerts.append)
        record = simulate_attack_session(duration_s=45.0, seed=54, env=env)
        _feed(verifier, record)
        assert len(alerts) == 1
        assert alerts[0].status is CallStatus.ATTACKER

    def test_vote_window_limits_memory(self, trained_detector, env):
        verifier = StreamingVerifier(trained_detector, vote_window=2)
        record = simulate_attack_session(duration_s=45.0, seed=55, env=env)
        _feed(verifier, record)
        assert len(verifier.state.attempts) == 2
        assert verifier.state.attempt_count == 2
        assert len(verifier.all_attempts) == 3


class TestRoiConcealment:
    def test_faceless_frames_hold_last_value(self, trained_detector, env):
        verifier = StreamingVerifier(trained_detector)
        record = simulate_genuine_session(duration_s=15.0, seed=56, env=env)
        frames = list(zip(record.transmitted, record.received))
        # Corrupt a received frame mid-stream.
        t_frame, r_frame = frames[50]
        broken = r_frame.copy()
        broken.pixels[:] = 0.0
        frames[50] = (t_frame, broken)
        for t_f, r_f in frames:
            verifier.push(t_f, r_f)
        # One attempt completed despite the corrupted frame.
        assert len(verifier.all_attempts) == 1
