"""Peak finding: local maxima, plateaus, prominence gating."""

import numpy as np
import pytest

from repro.core.peaks import Peak, find_peaks


class TestBasicDetection:
    def test_single_triangle_peak(self):
        x = np.array([0, 1, 2, 3, 2, 1, 0], dtype=float)
        peaks = find_peaks(x, 0.5)
        assert len(peaks) == 1
        assert peaks[0].index == 3
        assert peaks[0].height == pytest.approx(3.0)
        assert peaks[0].prominence == pytest.approx(3.0)

    def test_two_peaks_with_saddle(self):
        x = np.array([0, 5, 1, 4, 0], dtype=float)
        peaks = find_peaks(x, 0.5)
        assert [p.index for p in peaks] == [1, 3]
        # Left peak rises from the global floor; right peak only from the saddle.
        assert peaks[0].prominence == pytest.approx(5.0)
        assert peaks[1].prominence == pytest.approx(3.0)

    def test_endpoints_never_peaks(self):
        x = np.array([5, 1, 0, 1, 6], dtype=float)
        assert find_peaks(x, 0.5) == []

    def test_monotonic_signal_has_no_peaks(self):
        assert find_peaks(np.arange(10.0), 0.1) == []

    def test_flat_signal_has_no_peaks(self):
        assert find_peaks(np.zeros(20), 0.1) == []


class TestPlateaus:
    def test_plateau_reported_once_at_midpoint(self):
        x = np.array([0, 1, 3, 3, 3, 1, 0], dtype=float)
        peaks = find_peaks(x, 0.5)
        assert len(peaks) == 1
        assert peaks[0].index == 3

    def test_plateau_touching_edge_is_not_a_peak(self):
        x = np.array([3, 3, 3, 1, 0], dtype=float)
        assert find_peaks(x, 0.5) == []

    def test_zero_valley_between_lumps_is_not_a_peak(self):
        # The clamped smoothed-variance shape: lump, zero plateau, lump.
        x = np.array([0, 4, 8, 4, 0, 0, 0, 0, 3, 6, 3, 0], dtype=float)
        peaks = find_peaks(x, 0.5)
        assert [p.index for p in peaks] == [2, 9]


class TestProminenceGate:
    def test_small_peak_filtered(self):
        x = np.array([0, 10, 0, 0.3, 0, 10, 0], dtype=float)
        peaks = find_peaks(x, 0.5)
        assert [p.index for p in peaks] == [1, 5]

    def test_gate_is_inclusive(self):
        x = np.array([0, 0.5, 0], dtype=float)
        assert len(find_peaks(x, 0.5)) == 1

    def test_prominence_measured_from_higher_saddle(self):
        # Peak of height 6 between floors 2 (left) and 4 (right).
        x = np.array([10, 2, 6, 4, 12], dtype=float)
        peaks = find_peaks(x, 0.1)
        assert len(peaks) == 1
        assert peaks[0].prominence == pytest.approx(2.0)


class TestValidation:
    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            find_peaks(np.zeros((3, 3)), 1.0)

    def test_rejects_nonpositive_prominence(self):
        with pytest.raises(ValueError):
            find_peaks(np.zeros(5), 0.0)

    def test_short_signal_returns_empty(self):
        assert find_peaks(np.array([1.0, 2.0]), 0.5) == []

    def test_peak_is_frozen_dataclass(self):
        peak = Peak(index=1, height=2.0, prominence=1.0)
        with pytest.raises(Exception):
            peak.height = 5.0  # type: ignore[misc]
