"""Diagnostics-aware session verification."""

import numpy as np
import pytest

from repro.chat.session import SessionRecord
from repro.core.pipeline import ChatVerifier
from repro.experiments.profiles import Environment
from repro.experiments.simulate import simulate_attack_session, simulate_genuine_session
from repro.video.frame import Frame
from repro.video.stream import VideoStream


@pytest.fixture(scope="module")
def env():
    return Environment(frame_size=(72, 72), verifier_frame_size=(48, 48))


@pytest.fixture(scope="module")
def verifier(env):
    chat_verifier = ChatVerifier()
    chat_verifier.enroll(
        [
            simulate_genuine_session(duration_s=15.0, seed=600 + s, env=env)
            for s in range(10)
        ]
    )
    return chat_verifier


def _unchallenged_record(base_record) -> SessionRecord:
    """Replace the transmitted video with flat frames (no challenges)."""
    flat = VideoStream(fps=base_record.fps)
    for frame in base_record.transmitted:
        pixels = np.full_like(frame.pixels, 150.0)
        flat.append(Frame(pixels=pixels, timestamp=frame.timestamp))
    return SessionRecord(
        transmitted=flat,
        received=base_record.received,
        fps=base_record.fps,
        stats=dict(base_record.stats),
    )


class TestDiagnosedVerdict:
    def test_genuine_session_conclusive_and_live(self, verifier, env):
        record = simulate_genuine_session(duration_s=15.0, seed=700, env=env)
        verdict = verifier.verify_session_diagnosed(record)
        assert verdict.is_conclusive
        assert not verdict.is_attacker
        assert verdict.inconclusive_clips == 0

    def test_attack_session_conclusive_and_flagged(self, verifier, env):
        record = simulate_attack_session(duration_s=15.0, seed=701, env=env)
        verdict = verifier.verify_session_diagnosed(record)
        assert verdict.is_conclusive
        assert verdict.is_attacker

    def test_unchallenged_session_is_inconclusive(self, verifier, env):
        base = simulate_genuine_session(duration_s=15.0, seed=702, env=env)
        record = _unchallenged_record(base)
        verdict = verifier.verify_session_diagnosed(record)
        assert not verdict.is_conclusive
        assert verdict.verdict is None
        assert verdict.inconclusive_clips == 1
        # Crucially: an inconclusive session is NOT an attacker verdict.
        assert not verdict.is_attacker

    def test_plain_verify_would_have_guessed(self, verifier, env):
        """Contrast: the paper's always-answer pipeline brands the
        unchallenged legitimate user an attacker."""
        base = simulate_genuine_session(duration_s=15.0, seed=703, env=env)
        record = _unchallenged_record(base)
        plain = verifier.verify_session(record)
        diagnosed = verifier.verify_session_diagnosed(record)
        assert plain.is_attacker  # the guess punishes a legitimate user
        assert not diagnosed.is_conclusive  # the honest answer

    def test_short_session_raises(self, verifier, env):
        record = simulate_genuine_session(duration_s=8.0, seed=704, env=env)
        with pytest.raises(ValueError):
            verifier.verify_session_diagnosed(record)
