"""ChatVerifier: the assembled end-to-end defense."""

import pytest

from repro.core.config import DetectorConfig
from repro.core.pipeline import ChatVerifier
from repro.experiments.simulate import simulate_attack_session, simulate_genuine_session


@pytest.fixture(scope="module")
def enrolled_verifier(fast_env):
    """A verifier enrolled on three short genuine sessions."""
    verifier = ChatVerifier()
    sessions = [
        simulate_genuine_session(duration_s=15.0, seed=700 + s, env=fast_env)
        for s in range(6)
    ]
    return verifier.enroll(sessions)


# fast_env is defined in the top-level conftest; re-export for module scope.
@pytest.fixture(scope="module")
def fast_env():
    from repro.experiments.profiles import Environment

    return Environment(frame_size=(72, 72), verifier_frame_size=(48, 48))


class TestEnrollment:
    def test_enrollment_trains_detector(self, enrolled_verifier):
        assert enrolled_verifier.detector.is_trained
        assert enrolled_verifier.detector.training_size == 6

    def test_enroll_requires_sessions(self):
        with pytest.raises(ValueError):
            ChatVerifier().enroll([])

    def test_enroll_features_direct(self):
        from repro.core.features import FeatureVector

        bank = [FeatureVector(1.0, 1.0, 0.95, 0.05)] * 5 + [
            FeatureVector(1.0, 0.9, 0.9, 0.1)
        ]
        verifier = ChatVerifier().enroll_features(bank)
        assert verifier.detector.is_trained


class TestSessionVerification:
    def test_genuine_session_accepted(self, enrolled_verifier, fast_env):
        record = simulate_genuine_session(duration_s=15.0, seed=801, env=fast_env)
        verdict = enrolled_verifier.verify_session(record)
        assert not verdict.is_attacker
        assert len(verdict.attempts) == 1

    def test_attack_session_rejected(self, enrolled_verifier, fast_env):
        record = simulate_attack_session(duration_s=15.0, seed=802, env=fast_env)
        verdict = enrolled_verifier.verify_session(record)
        assert verdict.is_attacker

    def test_multi_clip_session_votes(self, enrolled_verifier, fast_env):
        record = simulate_attack_session(duration_s=45.0, seed=803, env=fast_env)
        verdict = enrolled_verifier.verify_session(record)
        assert len(verdict.attempts) == 3
        assert verdict.verdict.total_votes == 3
        # With D=3 the paper's rule needs rejects > 0.7*3, i.e. all three;
        # a majority of rejections is the robust expectation here.
        assert verdict.verdict.reject_votes >= 2

    def test_too_short_session_raises(self, enrolled_verifier, fast_env):
        record = simulate_genuine_session(duration_s=8.0, seed=804, env=fast_env)
        with pytest.raises(ValueError):
            enrolled_verifier.verify_session(record)


class TestSignalExtraction:
    def test_signals_trimmed_to_common_length(self, enrolled_verifier, fast_env):
        record = simulate_genuine_session(duration_s=15.0, seed=805, env=fast_env)
        t_lum, r_lum = enrolled_verifier.extract_signals(
            record.transmitted, record.received
        )
        assert t_lum.size == r_lum.size == 150

    def test_resampling_applied_when_rates_differ(self, fast_env):
        config = DetectorConfig(sample_rate_hz=5.0)
        verifier = ChatVerifier(config)
        record = simulate_genuine_session(duration_s=15.0, seed=806, env=fast_env)
        t_lum, r_lum = verifier.extract_signals(record.transmitted, record.received)
        # 15 s at 5 Hz: between 71 and 75 samples depending on edge frames.
        assert 70 <= t_lum.size <= 75
        assert t_lum.size == r_lum.size
