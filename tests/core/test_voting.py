"""Majority-vote decision combination (Sec. VII-B)."""

import pytest

from repro.core.detector import DetectionResult
from repro.core.features import FeatureVector
from repro.core.voting import VotingCombiner


def _result(rejected: bool) -> DetectionResult:
    return DetectionResult(
        features=FeatureVector(1.0, 1.0, 0.9, 0.1),
        lof_score=10.0 if rejected else 1.0,
        threshold=3.0,
    )


class TestVotingRule:
    def test_all_accept(self):
        verdict = VotingCombiner(0.7).combine([_result(False)] * 5)
        assert not verdict.is_attacker
        assert verdict.reject_votes == 0
        assert verdict.accept_votes == 5

    def test_all_reject(self):
        verdict = VotingCombiner(0.7).combine([_result(True)] * 5)
        assert verdict.is_attacker

    def test_boundary_is_strict(self):
        # 7 of 10 rejects == 0.7 * 10 exactly: NOT an attacker (strict >).
        results = [_result(True)] * 7 + [_result(False)] * 3
        assert not VotingCombiner(0.7).combine(results).is_attacker

    def test_just_above_boundary(self):
        results = [_result(True)] * 8 + [_result(False)] * 2
        assert VotingCombiner(0.7).combine(results).is_attacker

    def test_single_attempt_rejected(self):
        assert VotingCombiner(0.7).combine([_result(True)]).is_attacker

    def test_single_attempt_accepted(self):
        assert not VotingCombiner(0.7).combine([_result(False)]).is_attacker

    def test_tolerates_single_mistake_in_three(self):
        # The paper's motivation: one wrong rejection among three attempts
        # must not brand a legitimate user an attacker.
        results = [_result(True), _result(False), _result(False)]
        assert not VotingCombiner(0.7).combine(results).is_attacker


class TestBoolInterface:
    def test_combine_bools_matches_combine(self):
        combiner = VotingCombiner(0.7)
        pattern = [True, True, False, True, False]
        a = combiner.combine([_result(r) for r in pattern])
        b = combiner.combine_bools(pattern)
        assert a.is_attacker == b.is_attacker
        assert a.reject_votes == b.reject_votes


class TestValidation:
    def test_empty_attempts_raise(self):
        with pytest.raises(ValueError):
            VotingCombiner(0.7).combine([])
        with pytest.raises(ValueError):
            VotingCombiner(0.7).combine_bools([])

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            VotingCombiner(0.0)
        with pytest.raises(ValueError):
            VotingCombiner(1.0)
