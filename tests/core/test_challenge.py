"""Challenge quality grading and active scheduling."""

import numpy as np
import pytest

from repro.core.challenge import ChallengeScheduler, challenge_quality
from repro.core.config import DetectorConfig


def _clip_with_steps(*step_samples, n=150, level=180.0, magnitude=50.0):
    x = np.full(n, level)
    sign = -1.0
    for s in step_samples:
        x[s:] += sign * magnitude
        sign = -sign
    return x


class TestChallengeQuality:
    def test_counts_interior_challenges(self, config):
        quality = challenge_quality(_clip_with_steps(40, 110), config)
        assert quality.challenge_count == 2
        assert quality.sufficient

    def test_flat_clip_is_insufficient(self, config):
        quality = challenge_quality(np.full(150, 120.0), config)
        assert quality.challenge_count == 0
        assert not quality.sufficient
        assert quality.mean_prominence == pytest.approx(0.0)

    def test_guarded_challenge_not_counted(self, config):
        # A single step inside the end guard window.
        quality = challenge_quality(_clip_with_steps(146), config)
        assert quality.challenge_count == 0

    def test_spacing_reported(self, config):
        quality = challenge_quality(_clip_with_steps(30, 100), config)
        assert 5.0 < quality.min_spacing_s < 9.0

    def test_min_challenges_knob(self, config):
        quality = challenge_quality(_clip_with_steps(60), config, min_challenges=2)
        assert quality.challenge_count == 1
        assert not quality.sufficient

    def test_validation(self, config):
        with pytest.raises(ValueError):
            challenge_quality(np.zeros(150), config, min_challenges=0)


class TestScheduler:
    def test_guarantees_min_challenges_per_window(self):
        config = DetectorConfig()
        scheduler = ChallengeScheduler(config, min_challenges=2, min_gap_s=4.5)
        issued = []
        for tick in range(150):
            t = tick * 0.1
            if scheduler.tick(t):
                issued.append(t)
        assert len(issued) >= 2
        # Spacing respected; all inside the usable window.
        assert np.diff(issued).min() >= 4.5 - 1e-9
        assert max(issued) <= config.clip_duration_s - config.boundary_guard_s + 0.1

    def test_user_touches_reduce_scheduled_ones(self):
        scheduler = ChallengeScheduler(min_challenges=2, min_gap_s=4.5)
        scheduled = 0
        for tick in range(150):
            t = tick * 0.1
            if t == 1.0 or t == 6.0:  # the user touched twice already
                scheduler.note_challenge(t)
            if scheduler.tick(t):
                scheduled += 1
        assert scheduled == 0

    def test_second_window_rearms(self):
        scheduler = ChallengeScheduler(min_challenges=1, min_gap_s=4.5)
        first_window = sum(scheduler.tick(tick * 0.1) for tick in range(150))
        second_window = sum(scheduler.tick(15.0 + tick * 0.1) for tick in range(150))
        assert first_window >= 1
        assert second_window >= 1

    def test_impossible_demand_rejected(self):
        with pytest.raises(ValueError):
            ChallengeScheduler(min_challenges=5, min_gap_s=4.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChallengeScheduler(min_challenges=0)
        with pytest.raises(ValueError):
            ChallengeScheduler(min_gap_s=0.0)
        with pytest.raises(ValueError):
            ChallengeScheduler().should_challenge(-1.0)
