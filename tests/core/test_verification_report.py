"""VerificationReport: the one result shape every verifier returns."""

import dataclasses

import pytest

from repro.core.detector import DetectionResult
from repro.core.features import FeatureVector
from repro.core.pipeline import (
    ChatVerifier,
    DiagnosedVerdict,
    SessionVerdict,
    VerificationReport,
)
from repro.core.streaming import CallStatus, StreamingState
from repro.core.voting import Verdict


def _attempt(rejected: bool) -> DetectionResult:
    return DetectionResult(
        features=FeatureVector(1.0, 1.0, 0.9, 0.1),
        lof_score=5.0 if rejected else 1.0,
        threshold=3.0,
    )


def _verdict(rejects: int, total: int) -> Verdict:
    return Verdict(
        is_attacker=rejects > 0.7 * total,
        reject_votes=rejects,
        total_votes=total,
        vote_fraction=0.7,
    )


class TestShape:
    def test_conclusive_attacker(self):
        report = VerificationReport(
            verdict=_verdict(3, 3), attempts=tuple(_attempt(True) for _ in range(3))
        )
        assert report.is_conclusive
        assert report.is_attacker
        assert report.inconclusive_clips == 0

    def test_no_verdict_means_not_attacker(self):
        report = VerificationReport(verdict=None, attempts=())
        assert not report.is_conclusive
        assert not report.is_attacker

    def test_frozen(self):
        report = VerificationReport(verdict=None, attempts=())
        with pytest.raises(dataclasses.FrozenInstanceError):
            report.verdict = _verdict(0, 1)  # type: ignore[misc]


class TestUnifiedAliases:
    def test_legacy_names_are_the_same_class(self):
        assert SessionVerdict is VerificationReport
        assert DiagnosedVerdict is VerificationReport

    def test_batch_verifier_returns_the_report(self, genuine_record):
        verifier = ChatVerifier().enroll([genuine_record] * 3)
        report = verifier.verify_session(genuine_record)
        assert isinstance(report, VerificationReport)
        assert report.is_conclusive

    def test_diagnosed_verifier_returns_the_report(self, genuine_record):
        verifier = ChatVerifier().enroll([genuine_record] * 3)
        report = verifier.verify_session_diagnosed(genuine_record)
        assert isinstance(report, VerificationReport)
        assert report.diagnostics is not None
        assert len(report.diagnostics) == len(report.attempts)

    def test_streaming_state_exports_the_same_shape(self):
        attempts = (_attempt(True), _attempt(False))
        state = StreamingState(
            status=CallStatus.SUSPICIOUS,
            samples_buffered=10,
            attempts=attempts,
            verdict=_verdict(1, 2),
        )
        report = state.report
        assert isinstance(report, VerificationReport)
        assert report.attempts == attempts
        assert report.verdict == state.verdict
