"""Detector-side luminance extraction (Sec. IV)."""

import numpy as np
import pytest

from repro.core.luminance import (
    received_luminance_signal,
    roi_mean_luminance,
    transmitted_luminance_signal,
)
from repro.video.frame import Frame, blank_frame
from repro.video.stream import VideoStream
from repro.vision.geometry import Rect
from repro.vision.landmarks import LandmarkDetector


class TestRoiLuminance:
    def test_uniform_patch(self):
        frame = blank_frame(20, 20, value=100.0)
        value = roi_mean_luminance(frame, Rect(5, 5, 10, 10))
        assert value == pytest.approx(100.0)

    def test_partial_overlap_clipped(self):
        frame = blank_frame(10, 10, value=50.0)
        value = roi_mean_luminance(frame, Rect(-5, -5, 3, 3))
        assert value == pytest.approx(50.0)

    def test_fully_outside_returns_none(self):
        frame = blank_frame(10, 10, value=50.0)
        assert roi_mean_luminance(frame, Rect(20, 20, 25, 25)) is None

    def test_reads_the_right_pixels(self):
        frame = blank_frame(10, 10, value=0.0)
        frame.pixels[2:4, 2:4] = 200.0
        inside = roi_mean_luminance(frame, Rect(2, 2, 4, 4))
        outside = roi_mean_luminance(frame, Rect(6, 6, 8, 8))
        assert inside == pytest.approx(200.0)
        assert outside == pytest.approx(0.0)


class TestTransmittedSignal:
    def test_mean_luminance_per_frame(self):
        frames = [blank_frame(8, 8, value=v, timestamp=i / 10.0) for i, v in enumerate((0, 128, 255))]
        stream = VideoStream(fps=10.0, frames=frames)
        signal = transmitted_luminance_signal(stream)
        assert np.allclose(signal, [0.0, 128.0, 255.0])

    def test_empty_stream(self):
        assert transmitted_luminance_signal(VideoStream(fps=10.0)).size == 0


class TestReceivedSignal:
    def test_tracks_face_reflection(self, genuine_record):
        signal = received_luminance_signal(genuine_record.received, LandmarkDetector())
        assert signal.detection_rate > 0.95
        assert signal.luminance.size == len(genuine_record.received)
        # The reflection must actually move (Alice challenges during the clip).
        assert signal.luminance.max() - signal.luminance.min() > 3.0

    def test_faceless_stream_is_all_invalid(self):
        frames = [blank_frame(32, 32, value=30.0, timestamp=i / 10.0) for i in range(5)]
        stream = VideoStream(fps=10.0, frames=frames)
        signal = received_luminance_signal(stream, LandmarkDetector())
        assert signal.detection_rate == pytest.approx(0.0)
        assert np.allclose(signal.luminance, 0.0)

    def test_gap_holds_previous_value(self, genuine_record):
        detector = LandmarkDetector()
        frames = list(genuine_record.received.frames[:10])
        # Corrupt the middle frame so no face is found there.
        broken = frames[5].copy()
        broken.pixels[:] = 0.0
        frames[5] = broken
        stream = VideoStream(fps=10.0, frames=frames)
        signal = received_luminance_signal(stream, detector)
        assert not signal.valid[5]
        assert signal.luminance[5] == signal.luminance[4]

    def test_leading_gap_backfilled(self, genuine_record):
        detector = LandmarkDetector()
        frames = list(genuine_record.received.frames[:8])
        broken = frames[0].copy()
        broken.pixels[:] = 0.0
        frames[0] = broken
        # Timestamps must stay increasing; rebuild stream.
        stream = VideoStream(fps=10.0, frames=frames)
        signal = received_luminance_signal(stream, detector)
        assert not signal.valid[0]
        assert signal.luminance[0] == signal.luminance[1]
