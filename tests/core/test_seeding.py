"""spawn_seeds: the one blessed SeedSequence site."""

import numpy as np
import pytest

from repro.core import spawn_seeds


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(7, 4) == spawn_seeds(7, 4)

    def test_distinct_children(self):
        seeds = spawn_seeds(7, 8)
        assert len(set(seeds)) == 8

    def test_different_parents_diverge(self):
        assert spawn_seeds(1, 4) != spawn_seeds(2, 4)

    def test_plain_ints(self):
        for seed in spawn_seeds(3, 3):
            assert type(seed) is int
            assert 0 <= seed < 2**32

    def test_zero_count(self):
        assert spawn_seeds(7, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(7, -1)

    def test_bit_identical_to_legacy_inline_formula(self):
        # simulate.py used this exact expression before the hoist; the
        # helper must keep emitting the same streams or every recorded
        # experiment result shifts.
        for seed, count in [(0, 1), (7, 4), (123, 2), (2**31, 3)]:
            legacy = [
                int(s.generate_state(1)[0])
                for s in np.random.SeedSequence(seed).spawn(count)
            ]
            assert spawn_seeds(seed, count) == legacy
