"""DetectorConfig: paper defaults and validation."""

import dataclasses

import pytest

from repro.core.config import PAPER_CONFIG, DetectorConfig


class TestPaperDefaults:
    def test_sampling(self):
        assert PAPER_CONFIG.sample_rate_hz == 10.0
        assert PAPER_CONFIG.clip_duration_s == 15.0
        assert PAPER_CONFIG.samples_per_clip == 150

    def test_filter_chain_constants(self):
        assert PAPER_CONFIG.lowpass_cutoff_hz == 1.0
        assert PAPER_CONFIG.variance_window == 10
        assert PAPER_CONFIG.variance_threshold == 2.0
        assert PAPER_CONFIG.rms_window == 30
        assert PAPER_CONFIG.savgol_window == 31
        assert PAPER_CONFIG.moving_average_window == 10

    def test_peak_prominences(self):
        assert PAPER_CONFIG.peak_prominence_screen == 10.0
        assert PAPER_CONFIG.peak_prominence_face == 0.5

    def test_classifier_constants(self):
        assert PAPER_CONFIG.lof_neighbors == 5
        assert PAPER_CONFIG.lof_threshold == 3.0
        assert PAPER_CONFIG.vote_fraction == 0.7
        assert PAPER_CONFIG.dtw_scale == 30.0
        assert PAPER_CONFIG.segment_count == 2

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PAPER_CONFIG.lof_threshold = 1.0  # type: ignore[misc]


class TestValidation:
    def test_rejects_nonpositive_sample_rate(self):
        with pytest.raises(ValueError):
            DetectorConfig(sample_rate_hz=0.0)

    def test_rejects_cutoff_above_nyquist(self):
        with pytest.raises(ValueError):
            DetectorConfig(sample_rate_hz=10.0, lowpass_cutoff_hz=5.0)

    def test_rejects_even_savgol_window(self):
        with pytest.raises(ValueError):
            DetectorConfig(savgol_window=30)

    def test_rejects_polyorder_ge_window(self):
        with pytest.raises(ValueError):
            DetectorConfig(savgol_window=5, savgol_polyorder=5)

    def test_rejects_even_lowpass_taps(self):
        with pytest.raises(ValueError):
            DetectorConfig(lowpass_taps=40)

    def test_rejects_bad_vote_fraction(self):
        with pytest.raises(ValueError):
            DetectorConfig(vote_fraction=1.0)
        with pytest.raises(ValueError):
            DetectorConfig(vote_fraction=0.0)

    def test_rejects_negative_guard(self):
        with pytest.raises(ValueError):
            DetectorConfig(boundary_guard_s=-1.0)

    def test_rejects_zero_prominence(self):
        with pytest.raises(ValueError):
            DetectorConfig(peak_prominence_face=0.0)


class TestWithOverrides:
    def test_returns_modified_copy(self):
        changed = PAPER_CONFIG.with_overrides(sample_rate_hz=8.0)
        # Verbatim: 8.0 is the exact value passed one line up.
        assert changed.sample_rate_hz == 8.0  # reprolint: disable=R004
        assert PAPER_CONFIG.sample_rate_hz == 10.0
        assert changed.lof_threshold == PAPER_CONFIG.lof_threshold

    def test_validates_values(self):
        with pytest.raises(ValueError):
            PAPER_CONFIG.with_overrides(sample_rate_hz=-1.0)

    def test_rejects_unknown_field_by_name(self):
        with pytest.raises(ValueError, match="lof_treshold"):
            # The typo is the point of the test (R006's runtime twin).
            PAPER_CONFIG.with_overrides(lof_treshold=2.0)  # reprolint: disable=R006

    def test_no_overrides_is_an_identical_copy(self):
        assert PAPER_CONFIG.with_overrides() == PAPER_CONFIG

    def test_samples_per_clip_tracks_rate(self):
        assert PAPER_CONFIG.with_overrides(sample_rate_hz=8.0).samples_per_clip == 120
        assert PAPER_CONFIG.with_overrides(sample_rate_hz=5.0).samples_per_clip == 75

    def test_deprecated_replace_alias_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="with_overrides"):
            changed = PAPER_CONFIG.replace(sample_rate_hz=8.0)  # reprolint: disable=R006
        assert changed == PAPER_CONFIG.with_overrides(sample_rate_hz=8.0)
