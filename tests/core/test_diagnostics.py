"""Clip diagnostics: conclusive vs inconclusive evidence."""

import numpy as np
import pytest

from repro.core.diagnostics import ClipIssue, diagnose_clip, reflection_snr


def _challenged_clip(n=150):
    t = np.full(n, 180.0)
    t[40:] -= 50.0
    t[110:] += 50.0
    rng = np.random.default_rng(0)
    r = 130.0 + 0.3 * np.concatenate([np.full(4, t[0]), t[:-4]])
    return t, r + rng.normal(0, 0.4, n)


class TestReflectionSnr:
    def test_strong_reflection_high_snr(self):
        _, r = _challenged_clip()
        assert reflection_snr(r) > 10.0

    def test_pure_noise_low_snr(self):
        rng = np.random.default_rng(1)
        noise = 100.0 + rng.normal(0, 2.0, 150)
        assert reflection_snr(noise) < reflection_snr(_challenged_clip()[1])

    def test_noiseless_input_capped(self):
        assert reflection_snr(np.linspace(0, 10, 150)) <= 60.0

    def test_validation(self):
        with pytest.raises(ValueError):
            reflection_snr(np.zeros(4))


class TestDiagnoseClip:
    def test_good_clip_is_conclusive(self):
        t, r = _challenged_clip()
        diag = diagnose_clip(t, r, face_valid=np.ones(150, dtype=bool))
        assert diag.conclusive
        assert diag.issues == ()
        assert diag.challenge_count == 2

    def test_unchallenged_clip_flagged(self):
        r = _challenged_clip()[1]
        diag = diagnose_clip(np.full(150, 150.0), r)
        assert not diag.conclusive
        assert ClipIssue.NO_CHALLENGES in diag.issues

    def test_min_challenges_enforced(self):
        t = np.full(150, 180.0)
        t[60:] -= 50.0  # only one challenge
        diag = diagnose_clip(t, _challenged_clip()[1], min_challenges=2)
        assert ClipIssue.TOO_FEW_CHALLENGES in diag.issues

    def test_no_face_flagged(self):
        t, r = _challenged_clip()
        diag = diagnose_clip(t, r, face_valid=np.zeros(150, dtype=bool))
        assert ClipIssue.NO_FACE in diag.issues
        assert diag.face_coverage == pytest.approx(0.0)

    def test_partial_face_coverage_flagged(self):
        t, r = _challenged_clip()
        valid = np.ones(150, dtype=bool)
        valid[: 100] = False
        diag = diagnose_clip(t, r, face_valid=valid, min_face_coverage=0.5)
        assert ClipIssue.POOR_FACE_COVERAGE in diag.issues

    def test_weak_reflection_flagged(self):
        t, _ = _challenged_clip()
        rng = np.random.default_rng(2)
        flat_noisy = 130.0 + rng.normal(0, 3.0, 150)  # no reflected challenge
        diag = diagnose_clip(t, flat_noisy, min_snr_db=5.0)
        assert ClipIssue.WEAK_REFLECTION in diag.issues

    def test_face_mask_optional(self):
        t, r = _challenged_clip()
        diag = diagnose_clip(t, r)
        assert diag.face_coverage == pytest.approx(1.0)
