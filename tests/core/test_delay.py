"""Delay estimation and signal alignment (Sec. VI)."""

import numpy as np
import pytest

from repro.core.delay import align_signals, estimate_delay
from repro.core.matching import ChangeMatch, match_changes


def _matches(*diffs: float) -> list[ChangeMatch]:
    return [
        ChangeMatch(transmitted_index=i, received_index=i, time_difference_s=d)
        for i, d in enumerate(diffs)
    ]


class TestEstimateDelay:
    def test_mean_of_differences(self):
        assert estimate_delay(_matches(0.4, 0.6, 0.5)) == pytest.approx(0.5)

    def test_single_match(self):
        assert estimate_delay(_matches(0.3)) == pytest.approx(0.3)

    def test_no_matches_returns_none(self):
        assert estimate_delay([]) is None

    def test_recovers_planted_delay_through_matching(self):
        t_times = np.array([2.0, 7.0, 12.0])
        r_times = t_times + 0.42
        matches = match_changes(t_times, r_times, tolerance_s=1.0)
        assert estimate_delay(matches) == pytest.approx(0.42)


class TestAlignSignals:
    def test_positive_delay_shifts_received_back(self):
        t = np.arange(10.0)
        r = np.concatenate([[0.0, 0.0], np.arange(8.0)])  # r lags by 2 samples
        t_a, r_a = align_signals(t, r, delay_s=0.2, sample_rate_hz=10.0)
        assert np.allclose(t_a, r_a)
        assert t_a.size == 8

    def test_zero_delay_is_identity(self):
        t = np.arange(5.0)
        r = np.arange(5.0) * 2
        t_a, r_a = align_signals(t, r, 0.0, 10.0)
        assert np.allclose(t_a, t)
        assert np.allclose(r_a, r)

    def test_negative_delay_shifts_other_way(self):
        t = np.concatenate([[0.0, 0.0], np.arange(8.0)])
        r = np.arange(10.0)
        t_a, r_a = align_signals(t, r, delay_s=-0.2, sample_rate_hz=10.0)
        assert np.allclose(t_a, r_a)

    def test_rounding_to_sample_grid(self):
        t = np.arange(10.0)
        r = np.arange(10.0)
        t_a, r_a = align_signals(t, r, delay_s=0.04, sample_rate_hz=10.0)
        assert t_a.size == 10  # 0.04 s rounds to 0 samples

    def test_excessive_delay_raises(self):
        with pytest.raises(ValueError):
            align_signals(np.arange(5.0), np.arange(5.0), 10.0, 10.0)

    def test_outputs_are_copies(self):
        t = np.arange(5.0)
        r = np.arange(5.0)
        t_a, _ = align_signals(t, r, 0.0, 10.0)
        t_a[0] = 99.0
        assert t[0] == pytest.approx(0.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            align_signals(np.arange(5.0), np.arange(5.0), 0.0, 0.0)
