"""Change matching: the F(T,R)/G(T,R) pairing underlying z1 and z2."""

import numpy as np
import pytest

from repro.core.matching import match_changes


class TestBasicMatching:
    def test_perfect_alignment(self):
        t = np.array([2.0, 6.0, 10.0])
        r = np.array([2.4, 6.4, 10.4])
        matches = match_changes(t, r, tolerance_s=1.0)
        assert len(matches) == 3
        assert [(m.transmitted_index, m.received_index) for m in matches] == [
            (0, 0), (1, 1), (2, 2)
        ]
        assert all(m.time_difference_s == pytest.approx(0.4) for m in matches)

    def test_out_of_tolerance_not_matched(self):
        matches = match_changes(np.array([2.0]), np.array([3.5]), tolerance_s=1.0)
        assert matches == []

    def test_tolerance_is_inclusive(self):
        matches = match_changes(np.array([2.0]), np.array([3.0]), tolerance_s=1.0)
        assert len(matches) == 1

    def test_empty_inputs(self):
        assert match_changes(np.array([]), np.array([1.0]), 1.0) == []
        assert match_changes(np.array([1.0]), np.array([]), 1.0) == []


class TestOneToOne:
    def test_each_change_used_once(self):
        # Two received changes near one transmitted change.
        t = np.array([5.0])
        r = np.array([4.8, 5.3])
        matches = match_changes(t, r, tolerance_s=1.0)
        assert len(matches) == 1
        assert matches[0].received_index == 0  # the closer one wins

    def test_greedy_prefers_globally_closest(self):
        t = np.array([5.0, 6.0])
        r = np.array([5.9])
        matches = match_changes(t, r, tolerance_s=1.5)
        assert len(matches) == 1
        assert matches[0].transmitted_index == 1

    def test_crossing_assignments_resolved(self):
        t = np.array([1.0, 2.0])
        r = np.array([2.1, 1.2])
        matches = match_changes(t, r, tolerance_s=1.0)
        pairs = {(m.transmitted_index, m.received_index) for m in matches}
        assert pairs == {(0, 1), (1, 0)}

    def test_match_count_bounded_by_smaller_side(self):
        t = np.linspace(0, 10, 5)
        r = np.linspace(0, 10, 11)
        matches = match_changes(t, r, tolerance_s=2.0)
        assert len(matches) == 5


class TestOrderingAndValidation:
    def test_matches_sorted_by_transmitted_time(self):
        t = np.array([8.0, 2.0, 5.0])
        r = np.array([2.1, 5.1, 8.1])
        matches = match_changes(t, r, tolerance_s=1.0)
        times = [t[m.transmitted_index] for m in matches]
        assert times == sorted(times)

    def test_rejects_nonpositive_tolerance(self):
        with pytest.raises(ValueError):
            match_changes(np.array([1.0]), np.array([1.0]), 0.0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            match_changes(np.zeros((2, 2)), np.array([1.0]), 1.0)
