"""Local Outlier Factor: density semantics, Fig. 9 behaviour, edge cases."""

import warnings

import numpy as np
import pytest

from repro.core.lof import LocalOutlierFactor, SmallBankWarning


@pytest.fixture()
def cluster():
    """A tight 2-D cluster of 20 points around (1, 1)."""
    rng = np.random.default_rng(42)
    return np.array([1.0, 1.0]) + 0.05 * rng.normal(size=(20, 2))


class TestInlierOutlier:
    def test_cluster_member_scores_near_one(self, cluster):
        model = LocalOutlierFactor(5).fit(cluster)
        score = model.score(np.array([1.0, 1.0]))
        assert 0.5 < score < 1.5

    def test_distant_point_scores_high(self, cluster):
        model = LocalOutlierFactor(5).fit(cluster)
        assert model.score(np.array([3.0, -1.0])) > 5.0

    def test_score_grows_with_distance(self, cluster):
        model = LocalOutlierFactor(5).fit(cluster)
        scores = [model.score(np.array([1.0 + d, 1.0])) for d in (0.2, 0.5, 1.0, 2.0)]
        assert scores == sorted(scores)

    def test_fig9_style_separation(self):
        # The paper's Fig. 9: legitimate points LOF < 1.5, attacker ~2+.
        rng = np.random.default_rng(7)
        legit = np.column_stack([
            rng.uniform(0.9, 1.0, 30),
            rng.uniform(0.85, 1.0, 30),
        ])
        model = LocalOutlierFactor(5).fit(legit)
        legit_scores = model.score_samples(legit + 0.01 * rng.normal(size=legit.shape))
        attacker = np.array([0.45, 0.5])
        assert np.median(legit_scores) < 1.5
        assert model.score(attacker) > 2.0


class TestNoveltySemantics:
    def test_scoring_does_not_mutate_model(self, cluster):
        model = LocalOutlierFactor(5).fit(cluster)
        before = model.score(np.array([2.0, 2.0]))
        for _ in range(5):
            model.score(np.array([2.0, 2.0]))
        assert model.score(np.array([2.0, 2.0])) == before

    def test_batch_equals_individual(self, cluster):
        model = LocalOutlierFactor(5).fit(cluster)
        queries = np.array([[1.0, 1.0], [2.0, 0.0], [0.0, 2.0]])
        batch = model.score_samples(queries)
        singles = [model.score(q) for q in queries]
        assert np.allclose(batch, singles)

    def test_order_of_training_points_irrelevant(self, cluster):
        rng = np.random.default_rng(0)
        shuffled = cluster[rng.permutation(cluster.shape[0])]
        a = LocalOutlierFactor(5).fit(cluster).score(np.array([1.5, 1.5]))
        b = LocalOutlierFactor(5).fit(shuffled).score(np.array([1.5, 1.5]))
        assert a == pytest.approx(b)


class TestSmallAndDegenerateBanks:
    def test_k_capped_at_n_minus_one(self):
        train = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        with pytest.warns(SmallBankWarning):
            model = LocalOutlierFactor(5).fit(train)  # k becomes 2
        assert model.effective_neighbors == 2
        assert np.isfinite(model.score(np.array([0.5, 0.5])))

    def test_small_bank_clamp_is_never_silent(self):
        """k=5 against a tiny refitted tenant bank must announce itself."""
        train = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.warns(SmallBankWarning, match="clamping n_neighbors from 5"):
            LocalOutlierFactor(5).fit(train)

    def test_adequate_bank_emits_no_warning(self, cluster):
        with warnings.catch_warnings():
            warnings.simplefilter("error", SmallBankWarning)
            model = LocalOutlierFactor(5).fit(cluster)
        assert model.effective_neighbors == 5

    def test_strict_neighbors_raises_typed_error(self):
        train = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="cannot support n_neighbors=5"):
            LocalOutlierFactor(5, strict_neighbors=True).fit(train)

    def test_strict_neighbors_accepts_adequate_bank(self, cluster):
        model = LocalOutlierFactor(5, strict_neighbors=True).fit(cluster)
        assert model.effective_neighbors == 5

    def test_clamped_model_still_separates(self):
        """A degraded k must keep the inlier/outlier ordering."""
        rng = np.random.default_rng(3)
        train = rng.normal(0.0, 0.1, size=(4, 2))
        with pytest.warns(SmallBankWarning):
            model = LocalOutlierFactor(5).fit(train)
        inlier = model.score(np.array([0.0, 0.0]))
        outlier = model.score(np.array([4.0, 4.0]))
        assert outlier > inlier

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            LocalOutlierFactor(5).fit(np.array([[1.0, 2.0]]))

    def test_duplicate_training_points_query_on_top(self):
        train = np.tile([1.0, 1.0], (10, 1))
        model = LocalOutlierFactor(3).fit(train)
        # Query exactly on the degenerate cluster: inlier by convention.
        assert model.score(np.array([1.0, 1.0])) == pytest.approx(1.0)

    def test_duplicate_training_points_query_away(self):
        train = np.tile([1.0, 1.0], (10, 1))
        model = LocalOutlierFactor(3).fit(train)
        assert model.score(np.array([5.0, 5.0])) == np.inf


class TestValidation:
    def test_score_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LocalOutlierFactor(5).score(np.zeros(2))

    def test_dimension_mismatch_raises(self, cluster):
        model = LocalOutlierFactor(5).fit(cluster)
        with pytest.raises(ValueError):
            model.score(np.zeros(3))

    def test_nonfinite_training_rejected(self):
        bad = np.array([[0.0, np.nan], [1.0, 1.0]])
        with pytest.raises(ValueError):
            LocalOutlierFactor(5).fit(bad)

    def test_nonfinite_query_rejected(self, cluster):
        model = LocalOutlierFactor(5).fit(cluster)
        with pytest.raises(ValueError):
            model.score(np.array([np.inf, 0.0]))

    def test_rejects_k_below_one(self):
        with pytest.raises(ValueError):
            LocalOutlierFactor(0)

    def test_train_size_reported(self, cluster):
        model = LocalOutlierFactor(5).fit(cluster)
        assert model.train_size == 20
