"""Dynamic time warping distance (feature z4)."""

import numpy as np
import pytest

from repro.core.dtw import dtw_distance


class TestExactValues:
    def test_identical_sequences_zero(self):
        x = np.array([1.0, 2.0, 3.0, 2.0])
        assert dtw_distance(x, x) == pytest.approx(0.0)

    def test_constant_offset(self):
        x = np.zeros(5)
        y = np.ones(5)
        # No warping helps; every aligned pair costs 1.
        assert dtw_distance(x, y) == pytest.approx(5.0)

    def test_single_elements(self):
        assert dtw_distance(np.array([3.0]), np.array([7.0])) == pytest.approx(4.0)

    def test_known_small_case(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 2.0])
        # Optimal path: (0,0)->(1,1)->(2,1): 0 + 1 + 0 = 1.
        assert dtw_distance(x, y) == pytest.approx(1.0)

    def test_time_shift_cheaper_than_euclidean(self):
        t = np.linspace(0, 2 * np.pi, 50)
        x = np.sin(t)
        y = np.roll(np.sin(t), 3)
        euclidean = np.abs(x - y).sum()
        assert dtw_distance(x, y) < euclidean


class TestSymmetryAndScale:
    def test_symmetric(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=20)
        y = rng.normal(size=25)
        assert dtw_distance(x, y) == pytest.approx(dtw_distance(y, x))

    def test_scales_with_amplitude(self):
        x = np.zeros(10)
        y = np.sin(np.linspace(0, np.pi, 10))
        assert dtw_distance(x, 2 * y) == pytest.approx(2 * dtw_distance(x, y))


class TestBand:
    def test_wide_band_matches_exact(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=30)
        y = rng.normal(size=30)
        assert dtw_distance(x, y, band=30) == pytest.approx(dtw_distance(x, y))

    def test_band_widened_for_length_mismatch(self):
        # band=0 would make unequal lengths infeasible; it must auto-widen.
        x = np.arange(10.0)
        y = np.arange(5.0)
        assert np.isfinite(dtw_distance(x, y, band=0))

    def test_narrow_band_cost_at_least_exact(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=40)
        y = rng.normal(size=40)
        assert dtw_distance(x, y, band=3) >= dtw_distance(x, y) - 1e-9

    def test_rejects_negative_band(self):
        with pytest.raises(ValueError):
            dtw_distance(np.zeros(3), np.zeros(3), band=-1)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dtw_distance(np.array([]), np.array([1.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            dtw_distance(np.zeros((2, 2)), np.zeros(4))
