"""The Sec. V filter chain: each stage's numerics plus the composition."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.preprocessing import (
    design_lowpass,
    lowpass_filter,
    moving_average,
    moving_rms,
    moving_variance,
    preprocess,
    savgol_coefficients,
    savgol_filter,
    threshold_filter,
)


class TestLowpassDesign:
    def test_unit_dc_gain(self):
        kernel = design_lowpass(1.0, 10.0, 41)
        assert kernel.sum() == pytest.approx(1.0)

    def test_kernel_is_symmetric(self):
        kernel = design_lowpass(1.0, 10.0, 41)
        assert np.allclose(kernel, kernel[::-1])

    def test_rejects_cutoff_at_nyquist(self):
        with pytest.raises(ValueError):
            design_lowpass(5.0, 10.0, 41)

    def test_rejects_even_taps(self):
        with pytest.raises(ValueError):
            design_lowpass(1.0, 10.0, 40)


class TestLowpassFilter:
    def test_preserves_dc(self):
        x = np.full(100, 42.0)
        assert np.allclose(lowpass_filter(x, 10.0), 42.0)

    def test_attenuates_high_frequency(self):
        t = np.arange(200) / 10.0
        lo = np.sin(2 * np.pi * 0.2 * t)
        hi = np.sin(2 * np.pi * 4.0 * t)
        out = lowpass_filter(lo + hi, 10.0)
        # The 4 Hz component should be crushed; the 0.2 Hz one kept.
        residual_hi = out - lowpass_filter(lo, 10.0)
        assert np.abs(residual_hi[30:-30]).max() < 0.05
        assert np.abs(out[30:-30]).max() > 0.8

    def test_length_preserved(self):
        x = np.random.default_rng(0).normal(size=57)
        assert lowpass_filter(x, 10.0).size == 57

    def test_short_signal_does_not_crash(self):
        x = np.array([1.0, 2.0, 3.0])
        assert lowpass_filter(x, 10.0).size == 3


class TestMovingVariance:
    def test_constant_signal_zero_variance(self):
        assert np.allclose(moving_variance(np.full(30, 7.0), 10), 0.0)

    def test_step_produces_local_bump(self):
        x = np.concatenate([np.zeros(30), np.full(30, 10.0)])
        var = moving_variance(x, 10)
        assert var[:25].max() == pytest.approx(0.0)
        assert var[45:].max() == pytest.approx(0.0)
        assert var[28:40].max() == pytest.approx(25.0)  # (h/2)^2 at the edge

    def test_matches_numpy_variance_per_window(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=50)
        var = moving_variance(x, 10)
        for i in range(9, 50):
            assert var[i] == pytest.approx(np.var(x[i - 9 : i + 1]), abs=1e-10)

    def test_prefix_windows_grow(self):
        x = np.array([0.0, 10.0, 0.0, 10.0])
        var = moving_variance(x, 10)
        assert var[0] == pytest.approx(0.0)
        assert var[1] == pytest.approx(np.var(x[:2]))

    def test_never_negative(self):
        x = np.random.default_rng(2).normal(size=100) * 1e8
        assert (moving_variance(x, 10) >= 0).all()


class TestVectorizedBitIdentity:
    """The cumsum-sliced moving_variance/moving_rms must be bit-identical
    (==, not allclose) to the per-sample loop they replaced."""

    @staticmethod
    def _loop_variance(x, window):
        csum = np.concatenate(([0.0], np.cumsum(x)))
        csum2 = np.concatenate(([0.0], np.cumsum(x * x)))
        out = np.empty_like(x)
        for i in range(x.size):
            lo = max(i - window + 1, 0)
            n = i - lo + 1
            mean = (csum[i + 1] - csum[lo]) / n
            mean2 = (csum2[i + 1] - csum2[lo]) / n
            out[i] = max(mean2 - mean * mean, 0.0)
        return out

    @staticmethod
    def _loop_rms(x, window):
        csum2 = np.concatenate(([0.0], np.cumsum(x * x)))
        half = window // 2
        out = np.empty_like(x)
        for i in range(x.size):
            lo = max(i - half, 0)
            hi = min(i + window - half, x.size)
            out[i] = np.sqrt((csum2[hi] - csum2[lo]) / (hi - lo))
        return out

    @pytest.mark.parametrize("window", [1, 3, 10, 30, 200])
    def test_variance_matches_loop_exactly(self, window):
        rng = np.random.default_rng(4)
        x = rng.normal(120.0, 15.0, 150)
        assert (moving_variance(x, window) == self._loop_variance(x, window)).all()

    @pytest.mark.parametrize("window", [1, 3, 10, 30, 200])
    def test_rms_matches_loop_exactly(self, window):
        rng = np.random.default_rng(5)
        x = np.abs(rng.normal(0.0, 2.0, 150))
        assert (moving_rms(x, window) == self._loop_rms(x, window)).all()

    def test_empty_signal_round_trips(self):
        assert moving_variance(np.array([]), 10).size == 0
        assert moving_rms(np.array([]), 10).size == 0


class TestThresholdFilter:
    def test_zeroes_below_cutoff(self):
        x = np.array([0.5, 2.0, 1.9, 3.0])
        out = threshold_filter(x, 2.0)
        assert list(out) == [0.0, 2.0, 0.0, 3.0]

    def test_rejects_negative_cutoff(self):
        with pytest.raises(ValueError):
            threshold_filter(np.zeros(3), -1.0)


class TestMovingRms:
    def test_constant_signal_is_fixed_point(self):
        assert np.allclose(moving_rms(np.full(50, 3.0), 30), 3.0)

    def test_rms_of_centered_window(self):
        x = np.zeros(60)
        x[30] = 6.0
        out = moving_rms(x, 30)
        # Any window containing the spike has RMS sqrt(36/30).
        assert out[30] == pytest.approx(np.sqrt(36.0 / 30.0))

    def test_non_negative(self):
        x = np.random.default_rng(3).normal(size=80)
        assert (moving_rms(x, 30) >= 0).all()


class TestSavgol:
    def test_coefficients_sum_to_one(self):
        assert savgol_coefficients(31, 3).sum() == pytest.approx(1.0)

    def test_matches_scipy(self):
        scipy_signal = pytest.importorskip("scipy.signal")
        ours = savgol_coefficients(31, 3)
        theirs = scipy_signal.savgol_coeffs(31, 3)
        assert np.allclose(ours, theirs)

    def test_polynomial_is_reproduced_exactly(self):
        # A cubic is in the fit space, so the filter must pass it through.
        t = np.linspace(-1, 1, 101)
        x = 2 + t - 0.5 * t**2 + 0.3 * t**3
        out = savgol_filter(x, 31, 3)
        assert np.allclose(out[20:-20], x[20:-20], atol=1e-8)

    def test_rejects_even_window(self):
        with pytest.raises(ValueError):
            savgol_coefficients(30, 3)


class TestMovingAverage:
    def test_preserves_mean_of_constant(self):
        assert np.allclose(moving_average(np.full(40, 5.0), 10), 5.0)

    def test_smooths_alternating_signal(self):
        x = np.tile([0.0, 10.0], 30)
        out = moving_average(x, 10)
        assert np.abs(out[10:-10] - 5.0).max() < 1.1


class TestPreprocessComposition:
    def test_all_stages_present_and_same_length(self, step_signal, config):
        pre = preprocess(step_signal, config, config.peak_prominence_screen)
        n = step_signal.size
        for name in ("raw", "lowpassed", "variance", "thresholded", "rms", "savgol", "smoothed"):
            assert getattr(pre, name).size == n

    def test_two_steps_give_two_peaks(self, step_signal, config):
        pre = preprocess(step_signal, config, config.peak_prominence_screen)
        assert pre.change_count == 2
        # Steps at 4 s and 11 s; variance peaks trail slightly.
        assert abs(pre.peak_times[0] - 4.0) < 1.2
        assert abs(pre.peak_times[1] - 11.0) < 1.2

    def test_smoothed_signal_clamped_non_negative(self, step_signal, config):
        pre = preprocess(step_signal, config, config.peak_prominence_screen)
        assert (pre.smoothed >= 0).all()
        assert (pre.savgol >= 0).all()

    def test_no_phantom_midpoint_peak(self, config):
        # Regression: Savitzky-Golay undershoot between two lumps used to
        # create a spurious negative-valued local maximum.
        x = np.full(150, 180.0)
        x[40:] -= 40.0
        x[110:] += 40.0
        pre = preprocess(x, config, 0.5)
        times = pre.peak_times
        mid = (times > 6.0) & (times < 9.5)
        assert not mid.any(), f"phantom peaks at {times[mid]}"

    def test_flat_signal_has_no_changes(self, config):
        pre = preprocess(np.full(150, 100.0), config, 0.5)
        assert pre.change_count == 0

    def test_noise_only_signal_has_no_changes(self, config):
        rng = np.random.default_rng(7)
        x = 150.0 + rng.normal(0.0, 0.8, 150)  # sensor-level noise
        pre = preprocess(x, config, config.peak_prominence_face)
        assert pre.change_count == 0

    def test_peak_times_use_sample_rate(self, step_signal):
        cfg5 = DetectorConfig(sample_rate_hz=5.0)
        pre = preprocess(step_signal, cfg5, 10.0)
        assert np.allclose(pre.peak_times, pre.peak_indices / 5.0)
