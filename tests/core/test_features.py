"""Feature extraction: z1..z4 semantics on controlled signals."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.features import (
    FeatureVector,
    extract_features,
    normalize_unit,
    pearson_correlation,
    split_segments,
)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 3 * x + 2) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_input_gives_zero(self):
        assert pearson_correlation(np.ones(10), np.arange(10.0)) == pytest.approx(0.0)

    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=50)
        y = rng.normal(size=50)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.zeros(3), np.zeros(4))


class TestNormalizeUnit:
    def test_range_is_unit(self):
        x = np.array([5.0, 10.0, 7.5])
        out = normalize_unit(x)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_flat_signal_maps_to_zero(self):
        assert np.allclose(normalize_unit(np.full(5, 3.0)), 0.0)

    def test_preserves_shape_monotonicity(self):
        x = np.array([1.0, 3.0, 2.0])
        out = normalize_unit(x)
        assert out[1] > out[2] > out[0]


class TestSplitSegments:
    def test_two_halves(self):
        segs = split_segments(np.arange(10.0), 2)
        assert len(segs) == 2
        assert np.allclose(segs[0], np.arange(5.0))
        assert np.allclose(segs[1], np.arange(5.0, 10.0))

    def test_tail_dropped(self):
        segs = split_segments(np.arange(11.0), 2)
        assert all(s.size == 5 for s in segs)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            split_segments(np.arange(1.0), 2)


class TestFeatureVector:
    def test_array_round_trip(self):
        fv = FeatureVector(z1=0.5, z2=1.0, z3=0.9, z4=0.1)
        assert FeatureVector.from_array(fv.as_array()) == fv

    def test_from_array_validates_shape(self):
        with pytest.raises(ValueError):
            FeatureVector.from_array(np.zeros(3))


class TestExtractFeaturesCorrelated:
    """A genuine-looking pair: delayed, scaled reflection of the challenge."""

    def test_behavior_features_are_perfect(self, step_signal, reflected_signal, config):
        fx = extract_features(step_signal, reflected_signal, config)
        assert fx.features.z1 == pytest.approx(1.0)
        assert fx.features.z2 == pytest.approx(1.0)

    def test_delay_estimated_near_truth(self, step_signal, reflected_signal, config):
        fx = extract_features(step_signal, reflected_signal, config)
        assert abs(fx.delay_s - 0.4) < 0.3

    def test_trend_features_indicate_live(self, step_signal, reflected_signal, config):
        fx = extract_features(step_signal, reflected_signal, config)
        assert fx.features.z3 > 0.9
        assert fx.features.z4 < 0.3


class TestExtractFeaturesUncorrelated:
    """An attack-looking pair: independent luminance tracks."""

    @pytest.fixture()
    def attack_pair(self, step_signal):
        # Fake video with changes at completely different times.
        r = np.full(150, 140.0)
        r[20:] += 20.0
        r[75:] -= 30.0
        return step_signal, r

    def test_changes_mostly_unmatched(self, attack_pair, config):
        fx = extract_features(*attack_pair, config)
        assert fx.features.z1 < 0.6
        assert fx.features.z2 < 0.6

    def test_trend_decorrelated(self, attack_pair, config):
        fx = extract_features(*attack_pair, config)
        assert fx.features.z3 < 0.6


class TestDegenerateInputs:
    def test_flat_received_signal(self, step_signal, config):
        fx = extract_features(step_signal, np.full(150, 120.0), config)
        assert fx.features.z1 == pytest.approx(0.0)
        assert fx.features.z2 == pytest.approx(0.0)  # M == 0

    def test_flat_both(self, config):
        fx = extract_features(np.full(150, 100.0), np.full(150, 120.0), config)
        assert fx.features.z1 == pytest.approx(0.0)
        assert fx.features.z2 == pytest.approx(0.0)
        # Flat trends: no correlation evidence.
        assert fx.features.z3 <= 0.0 or fx.features.z3 == pytest.approx(0.0)

    def test_short_signals_do_not_crash(self, config):
        fx = extract_features(np.full(20, 100.0), np.full(20, 120.0), config)
        assert isinstance(fx.features, FeatureVector)


class TestMatchIndexContract:
    def test_matches_index_the_untrimmed_peak_lists(self, step_signal, config):
        """Regression: match_changes runs on guard-trimmed peak arrays;
        the returned ChangeMatch indices must be remapped to the full
        (untrimmed) change lists, or a trimmed leading received peak
        shifts every received_index off by one."""
        rng = np.random.default_rng(13)
        delayed = np.concatenate([np.full(4, step_signal[0]), step_signal[:-4]])
        received = 120.0 + 0.3 * delayed + rng.normal(0.0, 0.4, delayed.size)
        # A pre-clip challenge's reflection: a step at 1.4 s, inside the
        # 2 s start guard, so the matcher never sees this peak.
        received[:14] -= 30.0
        fx = extract_features(step_signal, received, config)
        r_times = fx.received.peak_times
        t_times = fx.transmitted.peak_times
        assert r_times.size == 3
        assert r_times[0] < config.boundary_guard_s  # the trimmed peak
        assert len(fx.matches) == 2
        for m in fx.matches:
            assert 0 <= m.transmitted_index < t_times.size
            assert 0 < m.received_index < r_times.size  # never the trimmed one
            gap = abs(
                t_times[m.transmitted_index] - r_times[m.received_index]
            )
            assert gap <= config.match_tolerance_s

    def test_matched_pair_times_reproduce_time_difference(
        self, step_signal, reflected_signal, config
    ):
        fx = extract_features(step_signal, reflected_signal, config)
        for m in fx.matches:
            gap = (
                fx.received.peak_times[m.received_index]
                - fx.transmitted.peak_times[m.transmitted_index]
            )
            assert gap == pytest.approx(m.time_difference_s)


class TestBoundaryGuard:
    def test_change_near_clip_end_not_counted(self, config):
        # One challenge well inside, one inside the end guard window.
        t = np.full(150, 180.0)
        t[50:] -= 50.0
        t[144:] += 50.0  # at 14.4 s, inside the 2 s guard
        r = 120.0 + 0.3 * np.concatenate([np.full(4, t[0]), t[:-4]])
        # Remove the guarded change's reflection (truncated anyway).
        fx = extract_features(t, r, config)
        assert fx.features.z1 == pytest.approx(1.0)  # the truncated change is excused

    def test_guard_disabled_counts_everything(self, step_signal, reflected_signal):
        cfg = DetectorConfig(boundary_guard_s=0.0)
        fx = extract_features(step_signal, reflected_signal, cfg)
        assert fx.features.z1 == pytest.approx(1.0)  # both changes are interior here
