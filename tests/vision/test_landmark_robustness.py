"""Landmark-detector robustness across the conditions the system meets."""

import numpy as np
import pytest

from repro.camera.sensor import ImageSensor
from repro.vision.expression import PoseState
from repro.vision.face_model import make_face
from repro.vision.landmarks import LandmarkDetector, mean_landmark_error
from repro.vision.renderer import FaceRenderer


def _pose(**kwargs):
    defaults = dict(center_x=0.5, center_y=0.48, scale=0.3, roll=0.0, blink=0.0, mouth_open=0.0)
    defaults.update(kwargs)
    return PoseState(**defaults)


def _capture(renderer, pose, illum, exposure=None, noisy=False, seed=0):
    result = renderer.render(pose, illum, ambient_lux=illum)
    rng = np.random.default_rng(seed) if noisy else None
    sensor = ImageSensor(rng=rng)
    if exposure is None:
        exposure = 0.5 / max(result.radiance.mean(), 1e-9)
    return sensor.expose(result.radiance, exposure), result


class TestIlluminationLadder:
    @pytest.mark.parametrize("illum", [25.0, 60.0, 150.0, 400.0])
    def test_detects_across_light_levels(self, illum):
        face = make_face("x", tone="tan", rng=np.random.default_rng(0))
        renderer = FaceRenderer(face, 96, 96, seed=1)
        pixels, truth = _capture(renderer, _pose(), illum)
        detector = LandmarkDetector(jitter_fraction=0.0)
        landmarks = detector.detect(pixels)
        assert landmarks is not None
        assert mean_landmark_error(landmarks, truth.landmarks) < 8.0

    def test_severely_underexposed_frame_fails_gracefully(self):
        face = make_face("x", tone="dark", rng=np.random.default_rng(0))
        renderer = FaceRenderer(face, 96, 96, seed=1)
        pixels, _ = _capture(renderer, _pose(), 50.0, exposure=1e-4)
        assert LandmarkDetector().detect(pixels) is None


class TestPoseRobustness:
    @pytest.mark.parametrize("cx", [0.38, 0.5, 0.62])
    @pytest.mark.parametrize("scale", [0.24, 0.3, 0.36])
    def test_detects_across_positions_and_sizes(self, cx, scale):
        face = make_face("x", tone="light", rng=np.random.default_rng(2))
        renderer = FaceRenderer(face, 96, 96, seed=3)
        pixels, truth = _capture(renderer, _pose(center_x=cx, scale=scale), 120.0)
        detector = LandmarkDetector(jitter_fraction=0.0)
        landmarks = detector.detect(pixels)
        assert landmarks is not None
        # Error scales with face size; stay within a third of the half-width.
        assert mean_landmark_error(landmarks, truth.landmarks) < 0.35 * scale * 96

    def test_roll_tolerated(self):
        face = make_face("x", tone="light", rng=np.random.default_rng(4))
        renderer = FaceRenderer(face, 96, 96, seed=5)
        pixels, truth = _capture(renderer, _pose(roll=0.05), 120.0)
        landmarks = LandmarkDetector(jitter_fraction=0.0).detect(pixels)
        assert landmarks is not None

    def test_blink_and_talk_do_not_break_detection(self):
        face = make_face("x", tone="brown", rng=np.random.default_rng(6))
        renderer = FaceRenderer(face, 96, 96, seed=7)
        pixels, _ = _capture(renderer, _pose(blink=1.0, mouth_open=1.0), 120.0)
        assert LandmarkDetector().detect(pixels) is not None


class TestSensorNoise:
    def test_noise_only_jitters_landmarks(self):
        face = make_face("x", tone="light", rng=np.random.default_rng(8))
        renderer = FaceRenderer(face, 96, 96, seed=9)
        detector = LandmarkDetector(jitter_fraction=0.0)
        clean, _ = _capture(renderer, _pose(), 120.0)
        noisy, _ = _capture(renderer, _pose(), 120.0, noisy=True, seed=10)
        a = detector.detect(clean)
        b = detector.detect(noisy)
        assert a is not None and b is not None
        assert a.lower_bridge.distance_to(b.lower_bridge) < 3.0

    def test_glasses_do_not_break_detection(self):
        face = make_face("x", tone="tan", rng=np.random.default_rng(11), has_glasses=True)
        renderer = FaceRenderer(face, 96, 96, seed=12)
        pixels, _ = _capture(renderer, _pose(), 120.0)
        assert LandmarkDetector().detect(pixels) is not None
