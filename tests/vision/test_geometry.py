"""Geometry primitives."""

import math

import pytest

from repro.vision.geometry import Point, Rect, clamp, square_around


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == pytest.approx(0.5)

    def test_below_and_above(self):
        assert clamp(-1.0, 0.0, 1.0) == pytest.approx(0.0)
        assert clamp(2.0, 0.0, 1.0) == pytest.approx(1.0)

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_translate(self):
        p = Point(1, 2).translated(3, -1)
        assert (p.x, p.y) == (4, 1)

    def test_scale_about_origin(self):
        p = Point(2, 4).scaled(0.5)
        assert (p.x, p.y) == (1, 2)

    def test_scale_about_point(self):
        p = Point(3, 3).scaled(2.0, origin=Point(1, 1))
        assert (p.x, p.y) == (5, 5)

    def test_as_array(self):
        arr = Point(1.5, 2.5).as_array()
        assert list(arr) == [1.5, 2.5]


class TestRect:
    def test_dimensions(self):
        r = Rect(1, 2, 4, 8)
        assert r.width == 3
        assert r.height == 6
        assert r.area == 18
        assert (r.center.x, r.center.y) == (2.5, 5.0)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(4, 0, 1, 1)

    def test_contains_half_open(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(Point(0, 0))
        assert not r.contains(Point(2, 2))

    def test_intersect(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 6, 6)
        inter = a.intersect(b)
        assert inter == Rect(2, 2, 4, 4)

    def test_disjoint_intersect_none(self):
        assert Rect(0, 0, 1, 1).intersect(Rect(5, 5, 6, 6)) is None

    def test_clip_to_image(self):
        r = Rect(-2, -2, 3, 3).clipped_to(10, 10)
        assert r == Rect(0, 0, 3, 3)

    def test_clip_fully_outside(self):
        assert Rect(20, 20, 30, 30).clipped_to(10, 10) is None

    def test_pixel_slices_cover_geometry(self):
        rows, cols = Rect(1.2, 2.7, 3.8, 4.1).pixel_slices()
        assert rows == slice(2, 5)
        assert cols == slice(1, 4)

    def test_pixel_slices_never_empty(self):
        rows, cols = Rect(3.0, 3.0, 3.0, 3.0).pixel_slices()
        assert rows.stop > rows.start
        assert cols.stop > cols.start


class TestSquareAround:
    def test_centered_square(self):
        sq = square_around(Point(10, 20), 4.0)
        assert sq == Rect(8, 18, 12, 22)
        assert sq.center.x == pytest.approx(10)

    def test_negative_side_raises(self):
        with pytest.raises(ValueError):
            square_around(Point(0, 0), -1.0)

    def test_zero_side_allowed(self):
        sq = square_around(Point(5, 5), 0.0)
        assert sq.area == pytest.approx(0.0)
