"""Renderer: Von Kries reflection, landmark ground truth, occlusions."""

import numpy as np
import pytest

from repro.vision.expression import PoseState
from repro.vision.face_model import make_face
from repro.vision.renderer import BackgroundModel, FaceRenderer


def _pose(**kwargs):
    defaults = dict(center_x=0.5, center_y=0.48, scale=0.3, roll=0.0, blink=0.0, mouth_open=0.0)
    defaults.update(kwargs)
    return PoseState(**defaults)


class TestBackground:
    def test_has_bright_and_dark_zones(self):
        bg = BackgroundModel(64, 64, seed=1)
        radiance = bg.radiance(ambient_lux=100.0)
        bx, by = bg.bright_spot
        dx, dy = bg.dark_spot
        bright = radiance[int(by * 64), int(bx * 64)].mean()
        dark = radiance[int(dy * 64), int(dx * 64)].mean()
        assert bright > 3 * dark

    def test_screen_coupling(self):
        bg = BackgroundModel(32, 32, seed=2, screen_coupling=0.5)
        without = bg.radiance(50.0, screen_lux=0.0)
        with_screen = bg.radiance(50.0, screen_lux=100.0)
        assert with_screen.mean() == pytest.approx(without.mean() * 2.0)

    def test_radiance_scales_with_ambient(self):
        bg = BackgroundModel(32, 32, seed=3)
        assert bg.radiance(200.0).mean() == pytest.approx(2 * bg.radiance(100.0).mean())


class TestFaceRendering:
    def test_von_kries_proportionality(self, renderer, neutral_pose):
        """Doubling face illuminance doubles face radiance (Eq. 2)."""
        dim = renderer.render(neutral_pose, 50.0, ambient_lux=50.0)
        bright = renderer.render(neutral_pose, 100.0, ambient_lux=50.0)
        lm = dim.landmarks["nasal_bridge"][-1]
        y, x = int(lm.y), int(lm.x)
        ratio = bright.radiance[y, x] / dim.radiance[y, x]
        assert np.allclose(ratio, 2.0, rtol=1e-6)

    def test_face_visible_flag(self, renderer, neutral_pose):
        assert renderer.render(neutral_pose, 50.0, 50.0).face_visible
        gone = _pose(center_x=-0.5, center_y=-0.5)
        assert not renderer.render(gone, 50.0, 50.0).face_visible

    def test_nose_brighter_than_cheek(self, renderer, neutral_pose):
        result = renderer.render(neutral_pose, 80.0, 80.0)
        nose = result.landmarks["nasal_bridge"][-1]
        nose_val = result.radiance[int(nose.y), int(nose.x)].sum()
        # A cheek point: halfway between nose and face edge.
        cheek_x = int(nose.x + 0.5 * neutral_pose.scale * renderer.width)
        cheek_val = result.radiance[int(nose.y), cheek_x].sum()
        assert nose_val > cheek_val

    def test_skin_is_red_dominant(self, renderer, neutral_pose):
        result = renderer.render(neutral_pose, 80.0, 80.0)
        nose = result.landmarks["nasal_bridge"][-1]
        r, g, b = result.radiance[int(nose.y), int(nose.x)]
        assert r > g > b

    def test_eyes_darker_than_skin_when_open(self, renderer, neutral_pose):
        result = renderer.render(neutral_pose, 80.0, 80.0)
        eye = result.landmarks["left_eye"][0]
        nose = result.landmarks["nasal_bridge"][-1]
        assert (
            result.radiance[int(eye.y), int(eye.x)].sum()
            < result.radiance[int(nose.y), int(nose.x)].sum()
        )

    def test_blink_restores_skin_at_eye(self, renderer):
        open_eye = renderer.render(_pose(blink=0.0), 80.0, 80.0)
        closed = renderer.render(_pose(blink=1.0), 80.0, 80.0)
        eye = open_eye.landmarks["left_eye"][0]
        y, x = int(eye.y), int(eye.x)
        assert closed.radiance[y, x].sum() > open_eye.radiance[y, x].sum()

    def test_negative_illuminance_rejected(self, renderer, neutral_pose):
        with pytest.raises(ValueError):
            renderer.render(neutral_pose, -1.0, 50.0)


class TestLandmarkGroundTruth:
    def test_landmarks_track_translation(self, renderer):
        left = renderer.render(_pose(center_x=0.4), 50.0, 50.0).landmarks
        right = renderer.render(_pose(center_x=0.6), 50.0, 50.0).landmarks
        shift = right["nasal_bridge"][0].x - left["nasal_bridge"][0].x
        assert shift == pytest.approx(0.2 * renderer.width, abs=1e-6)

    def test_landmarks_scale_with_face(self, renderer):
        small = renderer.render(_pose(scale=0.25), 50.0, 50.0).landmarks
        large = renderer.render(_pose(scale=0.35), 50.0, 50.0).landmarks

        def bridge_to_tip(lms):
            return abs(lms["nasal_bridge"][-1].y - lms["nasal_tip"][2].y)

        assert bridge_to_tip(large) > bridge_to_tip(small)

    def test_roll_rotates_landmarks(self, renderer):
        straight = renderer.render(_pose(roll=0.0), 50.0, 50.0).landmarks
        rolled = renderer.render(_pose(roll=0.1), 50.0, 50.0).landmarks
        # Eyes are off-axis, so roll moves them vertically.
        assert rolled["left_eye"][0].y != pytest.approx(straight["left_eye"][0].y)

    def test_bridge_point_lies_on_rendered_nose(self, renderer, neutral_pose):
        result = renderer.render(neutral_pose, 80.0, 80.0)
        face = renderer.face
        nose = result.landmarks["nasal_bridge"][-1]
        pixel = result.radiance[int(nose.y), int(nose.x)]
        # The nose pixel uses the boosted reflectance under full illum:
        # reflectance ratio R/G should match the face's nose reflectance.
        expected_ratio = face.nose_reflectance[0] / face.nose_reflectance[1]
        assert pixel[0] / pixel[1] == pytest.approx(expected_ratio, rel=0.01)


class TestGlassesAndHair:
    def test_hair_darkens_forehead(self):
        face = make_face("hairy", tone="light")
        renderer = FaceRenderer(face, 72, 72, seed=1)
        result = renderer.render(_pose(), 80.0, 80.0)
        cx = renderer.width // 2
        # Topmost face rows are hair (reflectance 0.06, chromatically flat).
        top_face_y = int(0.48 * 72 - 0.3 * 72 * face.face_aspect) + 2
        hair_pixel = result.radiance[top_face_y, cx]
        assert hair_pixel.max() < 0.1 * 80.0

    def test_glasses_frames_rendered(self):
        face = make_face("specs", tone="light", has_glasses=True)
        renderer = FaceRenderer(face, 72, 72, seed=1)
        plain = make_face("plain", tone="light", has_glasses=False)
        renderer_plain = FaceRenderer(plain, 72, 72, seed=1)
        a = renderer.render(_pose(), 80.0, 80.0).radiance
        b = renderer_plain.render(_pose(), 80.0, 80.0).radiance
        assert not np.allclose(a, b)

    def test_size_mismatch_with_background_rejected(self):
        face = make_face("x")
        bg = BackgroundModel(32, 32)
        with pytest.raises(ValueError):
            FaceRenderer(face, 64, 64, background=bg)
