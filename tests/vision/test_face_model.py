"""FaceModel and the canonical landmark layout."""

import numpy as np
import pytest

from repro.vision.face_model import LANDMARK_LAYOUT, SKIN_TONES, FaceModel, make_face


class TestLayout:
    def test_bridge_has_four_points(self):
        assert len(LANDMARK_LAYOUT["nasal_bridge"]) == 4

    def test_tip_has_five_points(self):
        assert len(LANDMARK_LAYOUT["nasal_tip"]) == 5

    def test_bridge_descends_toward_tip(self):
        bridge_vs = [v for _, v in LANDMARK_LAYOUT["nasal_bridge"]]
        assert bridge_vs == sorted(bridge_vs)
        assert bridge_vs[-1] < LANDMARK_LAYOUT["nasal_tip"][2][1]

    def test_all_landmarks_inside_face_ellipse(self):
        for points in LANDMARK_LAYOUT.values():
            for u, v in points:
                assert u * u + v * v <= 1.0


class TestSkinTones:
    def test_tones_are_red_dominant(self):
        for rgb in SKIN_TONES.values():
            r, g, b = rgb
            assert r > g > b

    def test_tone_ladder_descends_in_reflectance(self):
        order = ["light", "tan", "medium", "brown", "dark"]
        means = [np.mean(SKIN_TONES[t]) for t in order]
        assert means == sorted(means, reverse=True)


class TestFaceModel:
    def test_nose_reflectance_boosted_but_capped(self):
        face = make_face("x", tone="light")
        assert (face.nose_reflectance >= face.skin_reflectance).all()
        assert (face.nose_reflectance <= 0.98).all()

    def test_invalid_reflectance_rejected(self):
        with pytest.raises(ValueError):
            FaceModel(name="bad", skin_reflectance=np.array([1.2, 0.5, 0.4]))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            FaceModel(name="bad", skin_reflectance=np.array([0.5, 0.4]))

    def test_hair_fraction_bounds(self):
        with pytest.raises(ValueError):
            FaceModel(
                name="bad",
                skin_reflectance=np.array([0.5, 0.4, 0.3]),
                hair_fraction=0.6,
            )


class TestMakeFace:
    def test_unknown_tone_rejected(self):
        with pytest.raises(ValueError):
            make_face("x", tone="plaid")

    def test_deterministic_given_rng_seed(self):
        a = make_face("x", tone="dark", rng=np.random.default_rng(5))
        b = make_face("x", tone="dark", rng=np.random.default_rng(5))
        assert np.allclose(a.skin_reflectance, b.skin_reflectance)
        assert a.face_aspect == b.face_aspect

    def test_perturbation_stays_valid(self):
        for seed in range(20):
            face = make_face("x", tone="dark", rng=np.random.default_rng(seed))
            assert (face.skin_reflectance > 0).all()
            assert (face.skin_reflectance < 1).all()

    def test_glasses_flag_propagates(self):
        assert make_face("x", has_glasses=True).has_glasses
