"""Landmark detector: accuracy against rendered ground truth."""

import numpy as np
import pytest

from repro.camera.sensor import ImageSensor
from repro.vision.expression import PoseState
from repro.vision.face_model import make_face
from repro.vision.landmarks import FaceLandmarks, LandmarkDetector, mean_landmark_error
from repro.vision.geometry import Point
from repro.vision.renderer import FaceRenderer


def _frame_pixels(renderer, pose, illum=120.0):
    result = renderer.render(pose, illum, ambient_lux=illum)
    sensor = ImageSensor(rng=None)  # noiseless for exactness
    pixels = sensor.expose(result.radiance, exposure=1.0 / 250.0)
    return pixels, result


def _pose(**kwargs):
    defaults = dict(center_x=0.5, center_y=0.48, scale=0.3, roll=0.0, blink=0.0, mouth_open=0.0)
    defaults.update(kwargs)
    return PoseState(**defaults)


class TestDetection:
    @pytest.mark.parametrize("tone", ["light", "medium", "dark"])
    def test_detects_every_skin_tone(self, tone):
        face = make_face(tone, tone=tone)
        renderer = FaceRenderer(face, 96, 96, seed=2)
        pixels, _ = _frame_pixels(renderer, _pose())
        detector = LandmarkDetector(jitter_fraction=0.0)
        assert detector.detect(pixels) is not None

    def test_accuracy_within_tolerance(self, renderer, neutral_pose):
        pixels, result = _frame_pixels(renderer, neutral_pose)
        detector = LandmarkDetector(jitter_fraction=0.0)
        landmarks = detector.detect(pixels)
        assert landmarks is not None
        error = mean_landmark_error(landmarks, result.landmarks)
        # Within ~15% of the face half-width.
        assert error < 0.15 * neutral_pose.scale * 72 * 1.5

    def test_tracks_face_translation(self, renderer):
        detector = LandmarkDetector(jitter_fraction=0.0)
        pixels_l, _ = _frame_pixels(renderer, _pose(center_x=0.42))
        pixels_r, _ = _frame_pixels(renderer, _pose(center_x=0.58))
        left = detector.detect(pixels_l)
        right = detector.detect(pixels_r)
        assert right.lower_bridge.x - left.lower_bridge.x > 0.1 * 72

    def test_no_face_returns_none(self):
        rng = np.random.default_rng(0)
        gray = np.full((64, 64, 3), 90.0) + rng.normal(0, 2, (64, 64, 3))
        assert LandmarkDetector().detect(gray) is None

    def test_dark_frame_returns_none(self):
        assert LandmarkDetector().detect(np.zeros((64, 64, 3))) is None

    def test_face_out_of_frame_returns_none(self, renderer):
        pixels, _ = _frame_pixels(renderer, _pose(center_x=-0.6, center_y=-0.6))
        assert LandmarkDetector().detect(pixels) is None


class TestJitterModel:
    def test_jitter_varies_between_calls(self, renderer, neutral_pose):
        pixels, _ = _frame_pixels(renderer, neutral_pose)
        detector = LandmarkDetector(jitter_fraction=0.05, seed=1)
        a = detector.detect(pixels)
        b = detector.detect(pixels)
        assert a.lower_bridge != b.lower_bridge

    def test_zero_jitter_is_deterministic(self, renderer, neutral_pose):
        pixels, _ = _frame_pixels(renderer, neutral_pose)
        detector = LandmarkDetector(jitter_fraction=0.0)
        a = detector.detect(pixels)
        b = detector.detect(pixels)
        assert a.lower_bridge == b.lower_bridge


class TestFaceLandmarksType:
    def test_shape_validation(self):
        p = Point(0, 0)
        with pytest.raises(ValueError):
            FaceLandmarks(nasal_bridge=(p,), nasal_tip=(p,) * 5, left_eye=p, right_eye=p, mouth=p)
        with pytest.raises(ValueError):
            FaceLandmarks(nasal_bridge=(p,) * 4, nasal_tip=(p,) * 3, left_eye=p, right_eye=p, mouth=p)

    def test_nose_tip_center_is_mean(self):
        tips = tuple(Point(float(x), 10.0) for x in range(5))
        lm = FaceLandmarks(
            nasal_bridge=(Point(2, 5),) * 4,
            nasal_tip=tips,
            left_eye=Point(0, 0),
            right_eye=Point(4, 0),
            mouth=Point(2, 15),
        )
        assert lm.nose_tip_center.x == pytest.approx(2.0)
        assert lm.nose_tip_center.y == pytest.approx(10.0)

    def test_mean_error_requires_overlap(self):
        p = Point(0, 0)
        lm = FaceLandmarks(
            nasal_bridge=(p,) * 4, nasal_tip=(p,) * 5, left_eye=p, right_eye=p, mouth=p
        )
        with pytest.raises(ValueError):
            mean_landmark_error(lm, {"unknown_group": [p]})


class TestSkinMask:
    def test_mask_concentrated_on_face(self, renderer, neutral_pose):
        pixels, result = _frame_pixels(renderer, neutral_pose)
        detector = LandmarkDetector()
        mask = detector.skin_mask(pixels)
        nose = result.landmarks["nasal_bridge"][-1]
        assert mask[int(nose.y), int(nose.x)]
        assert not mask[2, 2]  # background corner

    def test_mask_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            LandmarkDetector().skin_mask(np.zeros((5, 5)))
