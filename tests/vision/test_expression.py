"""Expression/pose dynamics."""

import numpy as np
import pytest

from repro.vision.expression import ExpressionTrack


class TestDeterminism:
    def test_same_seed_same_performance(self):
        a = ExpressionTrack(seed=11)
        b = ExpressionTrack(seed=11)
        for t in (0.0, 1.3, 7.7, 59.2):
            assert a.sample(t) == b.sample(t)

    def test_different_seeds_differ(self):
        a = ExpressionTrack(seed=1).sample(5.0)
        b = ExpressionTrack(seed=2).sample(5.0)
        assert a != b


class TestPoseBounds:
    @pytest.mark.parametrize("seed", range(5))
    def test_face_stays_in_frame(self, seed):
        track = ExpressionTrack(seed=seed, movement_amplitude=0.035)
        for t in np.linspace(0, 60, 200):
            pose = track.sample(float(t))
            assert 0.3 < pose.center_x < 0.7
            assert 0.3 < pose.center_y < 0.7
            assert 0.2 < pose.scale < 0.45

    def test_blink_and_mouth_in_unit_range(self):
        track = ExpressionTrack(seed=3)
        for t in np.linspace(0, 30, 300):
            pose = track.sample(float(t))
            assert 0.0 <= pose.blink <= 1.0
            assert 0.0 <= pose.mouth_open <= 1.0


class TestBlinking:
    def test_blinks_happen(self):
        track = ExpressionTrack(seed=4, blink_rate_hz=0.5)
        blinks = [track.sample(float(t)).blink for t in np.linspace(0, 60, 1200)]
        assert max(blinks) > 0.5

    def test_no_blinks_when_rate_zero(self):
        track = ExpressionTrack(seed=4, blink_rate_hz=0.0)
        blinks = [track.sample(float(t)).blink for t in np.linspace(0, 30, 300)]
        assert max(blinks) == pytest.approx(0.0)

    def test_blinks_are_brief(self):
        track = ExpressionTrack(seed=5, blink_rate_hz=0.3)
        ts = np.linspace(0, 120, 4800)
        closed = np.array([track.sample(float(t)).blink for t in ts]) > 0.1
        assert 0.0 < closed.mean() < 0.15


class TestTalking:
    def test_mouth_moves_when_talking(self):
        track = ExpressionTrack(seed=6, talking=True)
        mouth = [track.sample(float(t)).mouth_open for t in np.linspace(0, 10, 100)]
        assert max(mouth) > 0.2

    def test_mouth_still_when_silent(self):
        track = ExpressionTrack(seed=6, talking=False)
        mouth = [track.sample(float(t)).mouth_open for t in np.linspace(0, 10, 100)]
        assert max(mouth) == pytest.approx(0.0)


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ExpressionTrack(seed=0).sample(-1.0)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            ExpressionTrack(seed=0, scale_base=0.5)

    def test_sample_many_matches_sample(self):
        track = ExpressionTrack(seed=9)
        times = np.array([0.5, 1.5, 2.5])
        many = track.sample_many(times)
        assert many == [track.sample(float(t)) for t in times]
