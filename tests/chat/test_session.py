"""VideoChatSession: the Fig. 4 loop."""

import numpy as np
import pytest

from repro.chat.session import VideoChatSession
from repro.experiments.profiles import Environment
from repro.experiments.simulate import (
    build_genuine_prover,
    build_links,
    build_verifier,
    default_user,
)
from repro.video.luminance import frame_mean_luminance


def _session(seed=0, env=None, fps=10.0, warmup=2.0):
    env = env or Environment(frame_size=(64, 64), verifier_frame_size=(48, 48))
    verifier = build_verifier(env, seed)
    prover = build_genuine_prover(default_user(), env, seed + 1)
    uplink, downlink = build_links(env, seed + 2)
    return VideoChatSession(
        verifier=verifier,
        prover=prover,
        uplink=uplink,
        downlink=downlink,
        fps=fps,
        warmup_s=warmup,
    )


class TestRecordShape:
    def test_stream_lengths_match_duration(self):
        record = _session(seed=1).run(duration_s=6.0)
        assert len(record.transmitted) == 60
        assert len(record.received) == 60
        assert record.fps == pytest.approx(10.0)
        assert record.duration_s == pytest.approx(6.0)

    def test_timestamps_aligned_on_verifier_clock(self):
        record = _session(seed=2).run(duration_s=4.0)
        assert np.allclose(
            record.transmitted.timestamps, record.received.timestamps
        )

    def test_warmup_excluded_from_record(self):
        record = _session(seed=3, warmup=2.0).run(duration_s=4.0)
        assert record.transmitted[0].timestamp == pytest.approx(2.0)

    def test_stats_populated(self):
        record = _session(seed=4).run(duration_s=4.0)
        assert "round_trip_delay_s" in record.stats
        assert record.stats["round_trip_delay_s"] > 0


class TestCausality:
    def test_reflection_follows_challenge(self):
        """The physical heart of the paper: Bob's face luminance must rise
        and fall with Alice's video luminance, delayed by the round trip."""
        record = _session(seed=5).run(duration_s=15.0)
        t_lum = np.array([frame_mean_luminance(f) for f in record.transmitted])
        r_lum = np.array([frame_mean_luminance(f) for f in record.received])
        # Cross-correlate at the nominal round-trip lag (4 samples).
        lag = 4
        t_c = t_lum[:-lag] - t_lum[:-lag].mean()
        r_c = r_lum[lag:] - r_lum[lag:].mean()
        corr = (t_c * r_c).sum() / np.sqrt((t_c**2).sum() * (r_c**2).sum())
        assert corr > 0.5

    def test_loss_freezes_but_does_not_stop(self):
        env = Environment(
            frame_size=(64, 64), verifier_frame_size=(48, 48), loss_rate=0.3
        )
        record = _session(seed=6, env=env).run(duration_s=5.0)
        assert record.stats["frozen_ticks"] > 0
        assert len(record.received) == 50


class TestValidation:
    def test_bad_duration(self):
        with pytest.raises(ValueError):
            _session().run(duration_s=0.0)

    def test_bad_fps(self):
        with pytest.raises(ValueError):
            VideoChatSession(verifier=None, prover=None, fps=0.0)
