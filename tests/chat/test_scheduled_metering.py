"""Active challenge injection: ScheduledMeteringBehavior end to end."""

import numpy as np
import pytest

from repro.camera.camera import Camera
from repro.camera.exposure import AutoExposureController
from repro.camera.metering import LightMeter, MeteringMode
from repro.camera.sensor import ImageSensor
from repro.chat.endpoints import ScheduledMeteringBehavior, VerifierEndpoint
from repro.core.challenge import ChallengeScheduler, challenge_quality
from repro.core.config import DetectorConfig
from repro.screen.illumination import AmbientLight
from repro.video.luminance import frame_mean_luminance
from repro.vision.expression import ExpressionTrack
from repro.vision.face_model import make_face


def _active_verifier(seed=0, min_challenges=2):
    scheduler = ChallengeScheduler(min_challenges=min_challenges, min_gap_s=4.5)
    face = make_face("alice", tone="tan", rng=np.random.default_rng(seed))
    verifier = VerifierEndpoint(
        face=face,
        expression=ExpressionTrack(seed=seed, movement_amplitude=0.01),
        ambient=AmbientLight(base_lux=90.0),
        frame_size=(48, 48),
        seed=seed,
        camera=Camera(
            sensor=ImageSensor(rng=np.random.default_rng(seed + 1)),
            meter=LightMeter(mode=MeteringMode.SPOT),
            auto_exposure=AutoExposureController(target_level=0.5),
        ),
    )
    background = verifier.renderer.background
    verifier.metering = ScheduledMeteringBehavior(
        bright_spot=background.bright_spot,
        dark_spot=background.dark_spot,
        scheduler=scheduler,
    )
    return verifier


class TestActiveChallenges:
    def test_every_clip_carries_enough_challenges(self):
        """The scheduler's whole point: no more unchallenged clips."""
        config = DetectorConfig()
        verifier = _active_verifier(seed=3, min_challenges=2)
        signal = np.array(
            [
                frame_mean_luminance(verifier.produce_frame(t))
                for t in np.arange(0.0, 15.0, 0.1)
            ]
        )
        quality = challenge_quality(signal, config, min_challenges=2)
        assert quality.sufficient, f"only {quality.challenge_count} challenges"

    def test_challenges_respect_spacing(self):
        verifier = _active_verifier(seed=4, min_challenges=2)
        for t in np.arange(0.0, 15.0, 0.1):
            verifier.produce_frame(float(t))
        times = [t for t, _ in verifier.metering.events]
        assert len(times) >= 2
        assert np.diff(times).min() >= 4.5 - 1e-9

    def test_consecutive_windows_each_served(self):
        verifier = _active_verifier(seed=5, min_challenges=1)
        for t in np.arange(0.0, 30.0, 0.1):
            verifier.produce_frame(float(t))
        times = np.array([t for t, _ in verifier.metering.events])
        assert (times < 15.0).sum() >= 1
        assert (times >= 15.0).sum() >= 1

    def test_spot_actually_alternates(self):
        verifier = _active_verifier(seed=6)
        for t in np.arange(0.0, 15.0, 0.1):
            verifier.produce_frame(float(t))
        targets = [spot for _, spot in verifier.metering.events]
        assert len(targets) >= 2
        assert targets[0] != targets[1]
