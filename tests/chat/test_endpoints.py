"""Chat endpoints: Alice's challenge behaviour, Bob's reflection."""

import numpy as np
import pytest

from repro.camera.metering import LightMeter, MeteringMode
from repro.chat.endpoints import GenuineProverEndpoint, MeteringBehavior, VerifierEndpoint
from repro.screen.display import DELL_27_LED, PHONE_6_OLED
from repro.screen.illumination import AmbientLight
from repro.video.frame import blank_frame
from repro.video.luminance import frame_mean_luminance
from repro.vision.expression import ExpressionTrack
from repro.vision.face_model import make_face


def _verifier(seed=0):
    return VerifierEndpoint(
        face=make_face("alice", tone="tan", rng=np.random.default_rng(seed)),
        expression=ExpressionTrack(seed=seed, movement_amplitude=0.01),
        ambient=AmbientLight(base_lux=90.0),
        frame_size=(48, 48),
        seed=seed,
    )


def _prover(seed=0, screen=DELL_27_LED, distance=0.5):
    return GenuineProverEndpoint(
        face=make_face("bob", tone="light", rng=np.random.default_rng(seed + 1)),
        expression=ExpressionTrack(seed=seed + 2),
        ambient=AmbientLight(base_lux=50.0),
        screen=screen,
        viewing_distance_m=distance,
        frame_size=(64, 64),
        seed=seed,
    )


class TestMeteringBehavior:
    def test_events_respect_gap_range(self):
        behavior = MeteringBehavior(
            bright_spot=(0.9, 0.5), dark_spot=(0.1, 0.5), gap_range_s=(4.0, 6.0), seed=3
        )
        times = [t for t, _ in behavior.events]
        gaps = np.diff(times)
        assert gaps.min() >= 4.0 - 1e-9
        assert gaps.max() <= 6.0 + 1e-9

    def test_touches_alternate_between_zones(self):
        behavior = MeteringBehavior(bright_spot=(0.9, 0.5), dark_spot=(0.1, 0.5), seed=4)
        targets = [spot for _, spot in behavior.events[:6]]
        for a, b in zip(targets, targets[1:]):
            assert a != b

    def test_spot_at_follows_schedule(self):
        behavior = MeteringBehavior(bright_spot=(0.9, 0.5), dark_spot=(0.1, 0.5), seed=5)
        first_time, first_target = behavior.events[0]
        assert behavior.spot_at(first_time - 0.1) == (0.5, 0.45)  # initial face spot
        assert behavior.spot_at(first_time + 0.1) == first_target

    def test_apply_points_the_meter(self):
        behavior = MeteringBehavior(bright_spot=(0.9, 0.5), dark_spot=(0.1, 0.5), seed=6)
        meter = LightMeter(mode=MeteringMode.MULTI_ZONE)
        behavior.apply(meter, behavior.events[0][0] + 0.1)
        assert meter.mode is MeteringMode.SPOT

    def test_bad_gap_range(self):
        with pytest.raises(ValueError):
            MeteringBehavior((0.9, 0.5), (0.1, 0.5), gap_range_s=(5.0, 4.0))


class TestVerifierEndpoint:
    def test_metering_challenges_change_video_luminance(self):
        verifier = _verifier(seed=2)
        signal = [
            frame_mean_luminance(verifier.produce_frame(t))
            for t in np.arange(0.0, 20.0, 0.1)
        ]
        span = max(signal) - min(signal)
        assert span > 30.0  # several stops of exposure swing

    def test_frames_carry_ground_truth(self):
        frame = _verifier(seed=3).produce_frame(0.0)
        assert "landmarks_truth" in frame.metadata
        assert "exposure" in frame.metadata


class TestGenuineProver:
    def test_screen_light_reaches_face(self):
        prover = _prover(seed=1)
        dark = prover.screen_lux(blank_frame(8, 8, value=0.0), t=0.0)
        bright = prover.screen_lux(blank_frame(8, 8, value=255.0), t=0.0)
        assert bright > 10 * max(dark, 0.1)

    def test_no_display_means_no_screen_light(self):
        prover = _prover(seed=1)
        assert prover.screen_lux(None, t=0.0) <= prover.screen_lux(
            blank_frame(8, 8, value=255.0), t=0.0
        ) * 0.05

    def test_face_brightens_with_displayed_content(self):
        prover = _prover(seed=4)
        bright_frame = blank_frame(8, 8, value=240.0)
        dark_frame = blank_frame(8, 8, value=10.0)
        # Let auto-exposure converge on the dark content and lock (as in
        # a real call), then flip the screen content.
        f_dark = None
        for i in range(20):
            f_dark = prover.produce_frame(i * 0.1, dark_frame)
        assert prover.camera.auto_exposure.locked
        f_bright = prover.produce_frame(2.1, bright_frame)
        assert frame_mean_luminance(f_bright) > frame_mean_luminance(f_dark)

    def test_phone_at_distance_gives_weak_reflection(self):
        monitor = _prover(seed=5, screen=DELL_27_LED, distance=0.5)
        phone = _prover(seed=5, screen=PHONE_6_OLED, distance=0.5)
        white = blank_frame(8, 8, value=255.0)
        assert phone.screen_lux(white, 0.0) < 0.2 * monitor.screen_lux(white, 0.0)

    def test_phone_close_up_recovers(self):
        far = _prover(seed=6, screen=PHONE_6_OLED, distance=0.5)
        near = _prover(seed=6, screen=PHONE_6_OLED, distance=0.1)
        white = blank_frame(8, 8, value=255.0)
        assert near.screen_lux(white, 0.0) > 5 * far.screen_lux(white, 0.0)

    def test_exposure_locks_after_warmup(self):
        prover = _prover(seed=7)
        displayed = blank_frame(8, 8, value=120.0)
        for i in range(25):
            prover.produce_frame(i * 0.1, displayed)
        assert prover.camera.auto_exposure.locked

    def test_orientation_wobble_bounded(self):
        prover = _prover(seed=8)
        gains = [prover._orientation_gain(t) for t in np.linspace(0, 100, 500)]
        assert min(gains) >= 1.0 - prover.orientation_wobble - 1e-9
        assert max(gains) <= 1.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            _prover(distance=0.0)
