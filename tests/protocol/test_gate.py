"""ProtocolGate and ProtocolProvisioner: ledger discipline and grading."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import LivenessDetector
from repro.core.features import FeatureVector
from repro.core.streaming import StreamingVerifier
from repro.protocol.commitment import BindingOutcome
from repro.protocol.gate import ProtocolGate
from repro.protocol.nonce import ack_tag
from repro.protocol.provision import ProtocolProvisioner
from repro.protocol.schedule import ProtocolConfig

SECRET = "unit-test-secret"
CHAIN = 0.5


@pytest.fixture()
def provisioner():
    return ProtocolProvisioner(SECRET)


def echo(gate: ProtocolGate, attempt: int = 0, delay: float = 0.35):
    """The (transmitted, received) peak pair of a clean genuine clip."""
    times = gate.schedule_for(attempt).times
    return [t + CHAIN for t in times], [t + CHAIN + delay for t in times]


class TestProvisioner:
    def test_provision_is_deterministic(self, provisioner):
        again = ProtocolProvisioner(SECRET)
        a = provisioner.provision("t", "s1")
        b = again.provision("t", "s1")
        assert a.nonce == b.nonce
        assert a.schedules(2) == b.schedules(2)

    def test_priors_snapshot_in_submit_order(self, provisioner):
        first = provisioner.provision("t", "s1")
        second = provisioner.provision("t", "s2")
        assert first.priors == ()
        assert {c.session_id for c in second.priors} == {"s1"}

    def test_ledger_is_bounded(self):
        protocol = ProtocolConfig(ledger_depth=2)
        provisioner = ProtocolProvisioner(SECRET, protocol=protocol)
        for i in range(5):
            provisioner.provision("t", f"s{i}")
        assert provisioner.ledger_size("t") == 2
        assert provisioner.ledger_size("other") == 0

    def test_tenants_do_not_share_ledgers(self, provisioner):
        provisioner.provision("a", "s1")
        gate = provisioner.provision("b", "s1")
        assert gate.priors == ()
        assert provisioner.ledger_size("a") == 1


class TestGate:
    def test_grade_advances_attempts(self, provisioner):
        gate = provisioner.provision("t", "s1")
        assert gate.attempts_graded == 0
        gate.grade(*echo(gate, attempt=0))
        report = gate.grade(*echo(gate, attempt=1))
        assert gate.attempts_graded == 2
        assert report.attempt_index == 1
        assert report.outcome is BindingOutcome.BOUND

    def test_replayed_prior_grades_replay(self, provisioner):
        prior = provisioner.provision("t", "s1")
        live = provisioner.provision("t", "s2")
        tx, _ = echo(live)
        _, replayed = echo(prior)
        report = live.grade(tx, replayed)
        assert report.outcome is BindingOutcome.REPLAY
        assert report.rejects

    def test_bound_report_does_not_reject(self, provisioner):
        gate = provisioner.provision("t", "s1")
        report = gate.grade(*echo(gate))
        assert not report.rejects
        assert report.lag_s == pytest.approx(0.35, abs=0.05)

    def test_unbound_rejects_only_when_enforced(self, provisioner):
        strict = ProtocolProvisioner(
            SECRET, protocol=ProtocolConfig(enforce_binding=True)
        )
        for source, expect in ((provisioner, False), (strict, True)):
            gate = source.provision("t", "s1")
            tx, _ = echo(gate)
            report = gate.grade(tx, [1.2, 2.1])
            assert report.outcome is BindingOutcome.UNBOUND
            assert report.rejects is expect

    def test_note_ack_accepts_hex_and_bytes(self, provisioner):
        gate = provisioner.provision("t", "s1")
        tag = ack_tag(gate.tenant_key, gate.nonce)
        assert gate.note_ack(tag)
        assert gate.note_ack(tag.hex())
        assert not gate.note_ack(b"\x00" * 32)


class TestStreamingBinding:
    def test_bind_protocol_exposes_the_gate(self, provisioner):
        rng = np.random.default_rng(1)
        bank = [
            FeatureVector(
                z1=1.0, z2=1.0, z3=0.95, z4=float(rng.uniform(0.02, 0.2))
            )
            for _ in range(20)
        ]
        verifier = StreamingVerifier(LivenessDetector(DetectorConfig()).fit(bank))
        assert verifier.protocol_gate is None
        gate = provisioner.provision("t", "s1")
        verifier.bind_protocol(gate)
        assert verifier.protocol_gate is gate
        verifier.reset()
        assert verifier.protocol_gate is None
