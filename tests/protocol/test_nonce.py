"""Keyed derivation: the HMAC hierarchy behind the challenge protocol."""

import pytest

from repro.protocol.nonce import (
    ack_tag,
    derive_session_nonce,
    derive_tenant_key,
    handshake_payload,
    prf,
    prf_stream,
    verify_ack,
)

SECRET = "unit-test-secret"


class TestPrf:
    def test_deterministic(self):
        assert prf(b"k", "a", 1) == prf(b"k", "a", 1)

    def test_key_separates(self):
        assert prf(b"k1", "a") != prf(b"k2", "a")

    def test_part_boundaries_are_injective(self):
        # The separator byte keeps ("a", "bc") distinct from ("ab", "c").
        assert prf(b"k", "a", "bc") != prf(b"k", "ab", "c")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            prf(b"", "a")

    def test_stream_is_counter_mode(self):
        long = prf_stream(b"k", "tag", blocks=3)
        assert len(long) == 96
        # Counter mode: shorter streams are prefixes of longer ones.
        assert long.startswith(prf_stream(b"k", "tag", blocks=1))

    def test_stream_needs_a_block(self):
        with pytest.raises(ValueError):
            prf_stream(b"k", "tag", blocks=0)


class TestHierarchy:
    def test_tenant_keys_are_contained(self):
        a = derive_tenant_key(SECRET, "tenant-a")
        b = derive_tenant_key(SECRET, "tenant-b")
        assert a != b
        assert len(a) == len(b) == 32

    def test_nonce_is_per_session(self):
        key = derive_tenant_key(SECRET, "tenant-a")
        assert derive_session_nonce(key, "s1") != derive_session_nonce(key, "s2")

    def test_ack_round_trip(self):
        key = derive_tenant_key(SECRET, "tenant-a")
        nonce = derive_session_nonce(key, "s1")
        tag = ack_tag(key, nonce)
        assert verify_ack(key, nonce, tag)

    def test_tampered_ack_fails(self):
        key = derive_tenant_key(SECRET, "tenant-a")
        nonce = derive_session_nonce(key, "s1")
        tag = ack_tag(key, nonce)
        assert not verify_ack(key, nonce, bytes([tag[0] ^ 1]) + tag[1:])

    def test_ack_is_nonce_bound(self):
        key = derive_tenant_key(SECRET, "tenant-a")
        old = derive_session_nonce(key, "old")
        new = derive_session_nonce(key, "new")
        # Replaying last call's ack against a fresh nonce is rejected.
        assert not verify_ack(key, new, ack_tag(key, old))

    def test_handshake_payload_round_trips_the_nonce(self):
        key = derive_tenant_key(SECRET, "tenant-a")
        nonce = derive_session_nonce(key, "s1")
        payload = handshake_payload("s1", nonce)
        assert payload["session_id"] == "s1"
        assert bytes.fromhex(payload["nonce"]) == nonce
        assert all(isinstance(v, str) for v in payload.values())
