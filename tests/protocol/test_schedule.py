"""Derived challenge schedules: placement, alternation, determinism."""

import pytest

from repro.core.config import DetectorConfig
from repro.protocol.nonce import derive_session_nonce, derive_tenant_key
from repro.protocol.provision import derive_session_schedules
from repro.protocol.schedule import ProtocolConfig, derive_schedule

KEY = derive_tenant_key("unit-test-secret", "tenant-a")
NONCE = derive_session_nonce(KEY, "session-1")


@pytest.fixture(scope="module")
def config():
    return DetectorConfig()


@pytest.fixture(scope="module")
def protocol():
    return ProtocolConfig()


class TestDerivation:
    def test_same_inputs_same_schedule(self, config, protocol):
        a = derive_schedule(KEY, NONCE, 0, config, protocol)
        b = derive_schedule(KEY, NONCE, 0, config, protocol)
        assert a == b

    def test_nonce_changes_everything(self, config, protocol):
        other = derive_session_nonce(KEY, "session-2")
        a = derive_schedule(KEY, NONCE, 0, config, protocol)
        b = derive_schedule(KEY, other, 0, config, protocol)
        assert a.times != b.times

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            derive_schedule(KEY, NONCE, -1)

    def test_mirrors_session_schedules_helper(self, config, protocol):
        mirrored = derive_session_schedules(
            "unit-test-secret", "tenant-a", "session-1", 2, config, protocol
        )
        assert mirrored[0] == derive_schedule(KEY, NONCE, 0, config, protocol)
        assert mirrored[1] == derive_schedule(KEY, NONCE, 1, config, protocol)


class TestPlacement:
    def test_times_stay_in_the_usable_window(self, config, protocol):
        start = protocol.start_margin_s
        end = (
            config.clip_duration_s
            - config.boundary_guard_s
            - protocol.end_margin_s
        )
        for attempt in range(4):
            schedule = derive_schedule(KEY, NONCE, attempt, config, protocol)
            assert len(schedule.challenges) == config.min_challenges
            for t in schedule.times:
                assert start <= t <= end

    def test_min_gap_holds(self, config, protocol):
        for attempt in range(4):
            times = derive_schedule(KEY, NONCE, attempt, config, protocol).times
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert all(g >= config.min_gap_s - 1e-9 for g in gaps)

    def test_times_sit_on_the_dyadic_grid(self, config, protocol):
        for t in derive_schedule(KEY, NONCE, 0, config, protocol).times:
            assert t * (1 << 20) == int(t * (1 << 20))

    def test_too_many_challenges_do_not_fit(self, protocol):
        config = DetectorConfig().with_overrides(min_challenges=8, min_gap_s=3.0)
        with pytest.raises(ValueError):
            derive_schedule(KEY, NONCE, 0, config, protocol)


class TestSpotsAndDeltas:
    def test_spots_alternate_across_attempt_boundaries(self, config, protocol):
        """Every consecutive challenge — including the last of one clip to
        the first of the next — flips to the *other* metering zone, so no
        challenge is a no-op flip (which would read as undelivered)."""
        flat = [
            c.spot
            for attempt in range(3)
            for c in derive_schedule(KEY, NONCE, attempt, config, protocol).challenges
        ]
        for a, b in zip(flat, flat[1:]):
            assert a != b

    def test_deltas_in_band_and_half_lux_quantized(self, config, protocol):
        lo, hi = protocol.delta_range_lux
        for c in derive_schedule(KEY, NONCE, 0, config, protocol).challenges:
            assert lo - 0.25 <= c.delta_lux <= hi + 0.25
            assert c.delta_lux * 2 == int(c.delta_lux * 2)

    def test_fingerprint_is_short_and_stable(self, config, protocol):
        schedule = derive_schedule(KEY, NONCE, 1, config, protocol)
        fp = schedule.fingerprint()
        assert fp == derive_schedule(KEY, NONCE, 1, config, protocol).fingerprint()
        digest, _, attempt = fp.partition("/")
        assert len(digest) == 12 and attempt == "1"
        assert int(digest, 16) >= 0

    def test_fingerprint_reveals_nothing_about_the_nonce(self, config, protocol):
        """The fingerprint is derived from the public challenge plan
        only — the old form leaked a nonce prefix into CLI output."""
        schedule = derive_schedule(KEY, NONCE, 1, config, protocol)
        assert NONCE.hex()[:12] not in schedule.fingerprint()
        assert NONCE.hex() not in repr(schedule)


class TestProtocolConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(freshness_window_s=0.0),
            dict(stale_max_lag_s=1.0, freshness_window_s=2.0),
            dict(bind_fraction=0.0),
            dict(bind_fraction=1.5),
            dict(start_margin_s=-0.1),
            dict(end_margin_s=-0.1),
            dict(ledger_depth=-1),
            dict(commit_attempts=0),
            dict(delta_range_lux=(0.0, 10.0)),
            dict(delta_range_lux=(20.0, 10.0)),
            dict(echo_margin_s=-0.01),
            dict(replay_residual_cap_s=0.0),
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ProtocolConfig(**kwargs)
