"""Binding classification on crafted peak times.

Schedules are constructed literally (not derived) so every geometric
case — fresh echo, clock skew, replayed prior, late relay, coincidence
— is pinned to exact numbers instead of whatever a nonce happens to
draw.  Tolerance is the paper's ``match_tolerance_s`` (1.0 s); chain
delay is 0.5 s throughout.
"""

import pytest

from repro.core.config import DetectorConfig
from repro.protocol.commitment import (
    BindingOutcome,
    ChallengeCommitment,
    ScheduleMatch,
    classify_binding,
    match_schedule,
)
from repro.protocol.schedule import (
    DerivedChallenge,
    DerivedSchedule,
    ProtocolConfig,
)

CHAIN = 0.5
TOL = DetectorConfig().match_tolerance_s
PROTOCOL = ProtocolConfig()


def schedule(*times, attempt=0):
    return DerivedSchedule(
        nonce=b"\x01" * 32,
        attempt_index=attempt,
        clip_duration_s=15.0,
        challenges=tuple(
            DerivedChallenge(
                time_s=t, spot="dark" if j % 2 == 0 else "bright", delta_lux=40.0
            )
            for j, t in enumerate(times)
        ),
    )


CURRENT = schedule(4.0, 10.0)
TX = [t + CHAIN for t in CURRENT.times]


def classify(received, priors=(), current=CURRENT, tx=TX):
    return classify_binding(
        current=current,
        priors=priors,
        transmitted_peak_times=tx,
        received_peak_times=received,
        tolerance_s=TOL,
        protocol=PROTOCOL,
    )


class TestMatchSchedule:
    def test_exact_echo_has_zero_residual(self):
        m = match_schedule([4.0, 10.0], [4.9, 10.9], TOL, -1.0, 2.5)
        assert m.matched == 2
        assert m.fraction == pytest.approx(1.0)
        assert m.lag_s == pytest.approx(0.9)
        assert m.residual_s == pytest.approx(0.0)

    def test_empty_inputs_no_match(self):
        assert match_schedule([], [1.0], TOL, -1.0, 2.5).matched == 0
        assert match_schedule([1.0], [], TOL, -1.0, 2.5).matched == 0

    def test_observable_window_shrinks_the_denominator(self):
        # The second expected response (10 + 4 = 14) falls past the
        # observable end; only the first counts, and it matches fully.
        m = match_schedule(
            [4.0, 10.0], [8.0], TOL, 2.5, 8.0, observable_end_s=12.0
        )
        assert m.fraction == pytest.approx(1.0)
        assert m.matched == 1

    def test_matched_count_outranks_fraction(self):
        two = ScheduleMatch(fraction=1.0, lag_s=0.0, residual_s=0.3, matched=2)
        one = ScheduleMatch(fraction=1.0, lag_s=0.0, residual_s=0.0, matched=1)
        assert two.key > one.key


class TestClassifyBinding:
    def test_fresh_echo_is_bound(self):
        outcome, match = classify([t + CHAIN + 0.4 for t in CURRENT.times])
        assert outcome is BindingOutcome.BOUND
        assert match.lag_s == pytest.approx(0.4)

    def test_clock_skewed_genuine_stays_bound(self):
        # The prover's clock runs 0.5 s ahead of the verifier's: responses
        # *lead* the expected times.  Skew within the allowance must not
        # turn a genuine session into anything condemnable.
        outcome, match = classify([t + CHAIN - 0.5 for t in CURRENT.times])
        assert outcome is BindingOutcome.BOUND
        assert match.lag_s == pytest.approx(-0.5)

    def test_replayed_prior_schedule_is_replay(self):
        prior = schedule(4.43, 10.38)
        outcome, match = classify(
            [t + CHAIN for t in prior.times], priors=[prior]
        )
        assert outcome is BindingOutcome.REPLAY
        assert match.residual_s == pytest.approx(0.0)

    def test_prior_collision_within_jitter_stays_bound(self):
        # The response echoes the live schedule with 0.05 s of detection
        # jitter; a prior schedule happens to fit the same peaks exactly.
        # Inside the echo margin that difference is noise — genuine wins.
        received = [4.0 + CHAIN + 0.43, 10.0 + CHAIN + 0.38]
        prior = schedule(4.05, 10.0)
        outcome, _ = classify(received, priors=[prior])
        assert outcome is BindingOutcome.BOUND

    def test_sloppy_prior_collision_cannot_claim_replay(self):
        # A prior whose fit needs 0.95 s of error on one challenge is a
        # coincidence, not an echo: the residual cap rejects the claim.
        received = [4.0 + CHAIN + 0.43, 10.0 + CHAIN + 0.38]
        prior = schedule(4.9, 9.9)
        outcome, _ = classify(received, priors=[prior])
        assert outcome is BindingOutcome.BOUND

    def test_late_echo_is_stale(self):
        received = [
            t + CHAIN + 4.0
            for t in CURRENT.times
            if t + CHAIN + 4.0 <= CURRENT.clip_duration_s
        ]
        outcome, match = classify(received)
        assert outcome is BindingOutcome.STALE
        assert match.lag_s == pytest.approx(4.0)

    def test_off_schedule_peaks_are_unbound(self):
        outcome, _ = classify([1.2, 2.1])
        assert outcome is BindingOutcome.UNBOUND

    def test_no_peaks_is_no_evidence(self):
        outcome, _ = classify([])
        assert outcome is BindingOutcome.NO_EVIDENCE

    def test_missing_transmitted_challenges_is_undelivered(self):
        outcome, _ = classify([4.9, 10.9], tx=[])
        assert outcome is BindingOutcome.UNDELIVERED


class TestCommitment:
    def test_commitment_carries_the_attempt_index(self):
        c = ChallengeCommitment(
            tenant_id="t", session_id="s", schedule=schedule(4.0, attempt=3)
        )
        assert c.attempt_index == 3
