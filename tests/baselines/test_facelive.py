"""FaceLive baseline and its sensor-forgery collapse."""

import numpy as np
import pytest

from repro.baselines.facelive import (
    FaceLiveDetector,
    SensorChannel,
    head_motion_from_video,
)


def _motion(seed=0, n=150):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / 10.0
    return 3.0 * np.sin(2 * np.pi * 0.2 * t + rng.uniform(0, 6)) + rng.normal(0, 0.1, n)


class TestHonestProver:
    def test_honest_sensors_correlate(self):
        motion = _motion(1)
        sensors = SensorChannel.honest(motion, noise_std=0.3, seed=2)
        detector = FaceLiveDetector()
        assert detector.is_live(motion, sensors)

    def test_uncorrelated_motion_rejected(self):
        detector = FaceLiveDetector()
        sensors = SensorChannel.honest(_motion(3), seed=4)
        assert not detector.is_live(_motion(5), sensors)


class TestSensorForgery:
    def test_attacker_with_forged_sensors_passes(self):
        """The paper's point: FaceLive is broken by reenactment attackers
        because they control the sensor channel."""
        fake_video_motion = _motion(7)  # motion the attacker synthesized
        forged = SensorChannel.forged(fake_video_motion)
        detector = FaceLiveDetector()
        assert detector.is_live(fake_video_motion, forged)
        assert detector.score(fake_video_motion, forged) == pytest.approx(1.0)


class TestVideoMotionExtraction:
    def test_tracks_real_head_motion(self, genuine_record):
        motion = head_motion_from_video(genuine_record.received)
        assert motion.size == len(genuine_record.received)
        assert motion.std() > 0.0  # the head actually moves

    def test_length_mismatch_rejected(self):
        detector = FaceLiveDetector()
        with pytest.raises(ValueError):
            detector.score(np.zeros(10), SensorChannel(readings=np.zeros(11)))
