"""Artifact-detection baseline."""

import numpy as np
import pytest

from repro.baselines.artifact import ArtifactDetector, artifact_features


class TestFeatures:
    def test_feature_vector_shape(self, genuine_record):
        features = artifact_features(genuine_record.received)
        assert features.shape == (3,)
        assert np.isfinite(features).all()

    def test_attack_has_more_flicker(self, genuine_record, attack_record):
        genuine = artifact_features(genuine_record.received)
        fake = artifact_features(attack_record.received)
        # Synthesis flicker raises at least one artifact statistic.
        assert (fake > genuine).any()

    def test_too_short_stream_rejected(self, genuine_record):
        from repro.video.stream import VideoStream

        short = VideoStream(fps=10.0, frames=genuine_record.received.frames[:3])
        with pytest.raises(ValueError):
            artifact_features(short)


class TestDetector:
    @pytest.fixture()
    def labelled(self):
        rng = np.random.default_rng(0)
        genuine = rng.normal([1.0, 0.5, 0.1], 0.1, size=(20, 3))
        fake = rng.normal([2.0, 1.5, 0.4], 0.1, size=(20, 3))
        return genuine, fake

    def test_requires_attacker_data(self):
        """The paper's criticism made explicit: no fake data, no model."""
        detector = ArtifactDetector()
        with pytest.raises(TypeError):
            detector.fit(np.zeros((10, 3)))  # type: ignore[call-arg]

    def test_classifies_separable_classes(self, labelled):
        genuine, fake = labelled
        detector = ArtifactDetector().fit(genuine, fake)
        assert detector.is_live(np.array([1.0, 0.5, 0.1]))
        assert not detector.is_live(np.array([2.0, 1.5, 0.4]))

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            ArtifactDetector().is_live(np.zeros(3))

    def test_is_live_stream_matches_feature_path(self, genuine_record, labelled):
        genuine, fake = labelled
        detector = ArtifactDetector().fit(genuine, fake)
        stream = genuine_record.received
        assert detector.is_live_stream(stream) == detector.is_live(
            artifact_features(stream)
        )

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            ArtifactDetector().fit(np.zeros((2, 3)), np.zeros((2, 4)))
        with pytest.raises(ValueError):
            ArtifactDetector().fit(np.zeros((1, 3)), np.zeros((5, 3)))
