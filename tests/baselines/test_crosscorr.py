"""Cross-correlation baseline."""

import numpy as np
import pytest

from repro.baselines.crosscorr import CrossCorrelationDetector, max_normalized_crosscorr


class TestMaxCrossCorr:
    def test_identical_signals_peak_at_zero_lag(self):
        x = np.sin(np.linspace(0, 6, 100))
        corr, lag = max_normalized_crosscorr(x, x, max_lag=10)
        assert corr == pytest.approx(1.0)
        assert lag == 0

    def test_recovers_planted_lag(self):
        x = np.sin(np.linspace(0, 12, 150))
        y = np.roll(x, 5)
        corr, lag = max_normalized_crosscorr(x, y, max_lag=10)
        assert lag == 5
        assert corr > 0.95

    def test_only_nonnegative_lags(self):
        x = np.sin(np.linspace(0, 12, 150))
        y = np.roll(x, -5)  # received *leads*: physically impossible
        corr, _ = max_normalized_crosscorr(x, y, max_lag=10)
        assert corr < 1.0

    def test_constant_signal_scores_low(self):
        corr, _ = max_normalized_crosscorr(np.ones(50), np.arange(50.0), max_lag=5)
        assert corr == pytest.approx(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_normalized_crosscorr(np.zeros(10), np.zeros(11), 2)
        with pytest.raises(ValueError):
            max_normalized_crosscorr(np.zeros(10), np.zeros(10), 10)


class TestDetector:
    def test_accepts_correlated_pair(self, step_signal, reflected_signal):
        detector = CrossCorrelationDetector()
        assert detector.is_live(step_signal, reflected_signal)

    def test_rejects_uncorrelated_pair(self, step_signal):
        rng = np.random.default_rng(0)
        fake = 140.0 + np.cumsum(rng.normal(0, 1.0, 150))
        detector = CrossCorrelationDetector()
        assert detector.score(step_signal, fake) < 0.9

    def test_score_in_unit_range(self, step_signal, reflected_signal):
        score = CrossCorrelationDetector().score(step_signal, reflected_signal)
        assert -1.0 <= score <= 1.0
