"""Property-based tests of the video plumbing (codec, stream)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.codec import VideoCodec
from repro.video.frame import Frame
from repro.video.stream import VideoStream


@st.composite
def random_frame(draw):
    h = draw(st.integers(min_value=2, max_value=24))
    w = draw(st.integers(min_value=2, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    return Frame(pixels=rng.uniform(0, 255, size=(h, w, 3)), timestamp=0.0)


class TestCodecProperties:
    @given(random_frame(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_quantization_error_bounded_by_half_step(self, frame, quality):
        codec = VideoCodec(quality=quality)
        decoded = codec.decode(codec.encode(frame))
        assert np.abs(decoded.pixels - frame.pixels).max() <= codec.quant_step / 2 + 1e-9

    @given(random_frame(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_idempotent_on_own_output(self, frame, quality):
        codec = VideoCodec(quality=quality)
        once = codec.decode(codec.encode(frame))
        twice = codec.decode(codec.encode(once))
        assert np.array_equal(once.pixels, twice.pixels)

    @given(random_frame())
    @settings(max_examples=40, deadline=None)
    def test_output_on_8bit_grid(self, frame):
        codec = VideoCodec(quality=1.0)
        decoded = codec.decode(codec.encode(frame))
        assert np.array_equal(decoded.pixels, np.round(decoded.pixels))
        assert decoded.pixels.min() >= 0
        assert decoded.pixels.max() <= 255


@st.composite
def stream_and_rate(draw):
    n = draw(st.integers(min_value=2, max_value=60))
    fps = draw(st.sampled_from([10.0, 15.0, 30.0]))
    target = draw(st.sampled_from([5.0, 8.0, 10.0]))
    frames = [
        Frame(pixels=np.full((2, 2, 3), float(i % 255)), timestamp=i / fps)
        for i in range(n)
    ]
    return VideoStream(fps=fps, frames=frames), target


class TestStreamProperties:
    @given(stream_and_rate())
    @settings(max_examples=40, deadline=None)
    def test_resampled_timestamps_uniform_and_causal(self, data):
        stream, rate = data
        out = stream.resampled(rate)
        times = out.timestamps
        if times.size >= 2:
            assert np.allclose(np.diff(times), 1.0 / rate)
        for frame in out:
            assert frame.metadata["source_timestamp"] <= frame.timestamp + 1e-9

    @given(stream_and_rate())
    @settings(max_examples=40, deadline=None)
    def test_resampling_never_invents_frames(self, data):
        stream, rate = data
        source_values = {float(f.pixels[0, 0, 0]) for f in stream}
        for frame in stream.resampled(rate):
            assert float(frame.pixels[0, 0, 0]) in source_values

    @given(stream_and_rate(), st.floats(min_value=0.3, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_segments_partition_prefix(self, data, duration):
        stream, _ = data
        clips = stream.segments(duration)
        per_clip = int(round(duration * stream.fps))
        if per_clip < 1:
            return
        assert all(len(c) == per_clip for c in clips)
        # Clips tile the stream prefix in order.
        flattened = [f.timestamp for c in clips for f in c]
        assert flattened == sorted(flattened)
        assert len(flattened) <= len(stream)
