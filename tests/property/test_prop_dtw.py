"""Property-based tests of the DTW distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.dtw import dtw_distance

seq = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=40),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)


class TestDtwAxioms:
    @given(seq)
    @settings(max_examples=50, deadline=None)
    def test_identity(self, x):
        assert dtw_distance(x, x) == pytest.approx(0.0)

    @given(seq, seq)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, x, y):
        assert dtw_distance(x, y) == dtw_distance(y, x)

    @given(seq, seq)
    @settings(max_examples=50, deadline=None)
    def test_non_negative(self, x, y):
        assert dtw_distance(x, y) >= 0.0

    @given(seq, seq)
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_worst_path(self, x, y):
        # Any monotone path has at most n + m - 1 steps; each step costs
        # at most the maximum pointwise difference.
        bound = (x.size + y.size) * (
            max(x.max(), y.max()) - min(x.min(), y.min())
        )
        assert dtw_distance(x, y) <= bound + 1e-9

    @given(seq, seq, st.floats(min_value=-50.0, max_value=50.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_translation_invariance(self, x, y, offset):
        # Shifting both sequences by the same constant changes nothing.
        a = dtw_distance(x, y)
        b = dtw_distance(x + offset, y + offset)
        assert np.isclose(a, b, rtol=1e-9, atol=1e-7)

    @given(seq)
    @settings(max_examples=50, deadline=None)
    def test_repeated_samples_free(self, x):
        # DTW can match a repeated sample to its original at zero cost.
        stretched = np.repeat(x, 2)
        assert dtw_distance(x, stretched) == pytest.approx(0.0)


class TestBandProperty:
    @given(seq, seq, st.integers(min_value=0, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_band_never_below_exact(self, x, y, band):
        exact = dtw_distance(x, y)
        banded = dtw_distance(x, y, band=band)
        assert banded >= exact - 1e-9
