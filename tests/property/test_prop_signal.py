"""Property-based tests of the signal-processing stages."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.preprocessing import (
    lowpass_filter,
    moving_average,
    moving_rms,
    moving_variance,
    threshold_filter,
)

finite_signal = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=5, max_value=200),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
)


class TestShapeInvariants:
    @given(finite_signal)
    @settings(max_examples=40, deadline=None)
    def test_every_stage_preserves_length(self, x):
        assert lowpass_filter(x, 10.0).size == x.size
        assert moving_variance(x, 10).size == x.size
        assert threshold_filter(x, 2.0).size == x.size
        assert moving_rms(x, 30).size == x.size
        assert moving_average(x, 10).size == x.size


class TestVarianceProperties:
    @given(finite_signal)
    @settings(max_examples=40, deadline=None)
    def test_variance_non_negative(self, x):
        assert (moving_variance(x, 10) >= 0).all()

    @given(finite_signal, st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_variance_shift_invariant(self, x, offset):
        a = moving_variance(x, 10)
        b = moving_variance(x + offset, 10)
        scale = max(np.abs(x).max(), abs(offset), 1.0)
        assert np.allclose(a, b, atol=1e-6 * scale**2 + 1e-9)

    @given(finite_signal, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_variance_scales_quadratically(self, x, factor):
        a = moving_variance(x, 10)
        b = moving_variance(x * factor, 10)
        # Absolute tolerance tracks the cancellation error of the
        # cumulative-sum formulation at the signal's magnitude.
        scale = (np.abs(x).max() * max(factor, 1.0) + 1.0) ** 2
        assert np.allclose(b, a * factor**2, rtol=1e-6, atol=1e-9 * scale)


class TestLinearStageProperties:
    @given(finite_signal, finite_signal)
    @settings(max_examples=30, deadline=None)
    def test_lowpass_is_linear(self, x, y):
        n = min(x.size, y.size)
        x, y = x[:n], y[:n]
        combined = lowpass_filter(x + y, 10.0)
        separate = lowpass_filter(x, 10.0) + lowpass_filter(y, 10.0)
        scale = max(np.abs(x).max(), np.abs(y).max(), 1.0)
        assert np.allclose(combined, separate, atol=1e-9 * scale)

    @given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
           st.integers(min_value=5, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_constants_are_fixed_points(self, value, n):
        x = np.full(n, value)
        assert np.allclose(lowpass_filter(x, 10.0), value, atol=1e-9 * max(abs(value), 1))
        assert np.allclose(moving_average(x, 10), value, atol=1e-9 * max(abs(value), 1))


class TestThresholdProperties:
    @given(finite_signal, st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_output_is_zero_or_original(self, x, cutoff):
        out = threshold_filter(x, cutoff)
        # Exact by construction: the filter writes literal 0.0 or the
        # original sample, never an approximation of either.
        assert ((out == 0.0) | (out == x)).all()  # reprolint: disable=R004

    @given(finite_signal)
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, x):
        once = threshold_filter(x, 2.0)
        twice = threshold_filter(once, 2.0)
        assert np.array_equal(once, twice)


class TestRmsProperties:
    @given(finite_signal)
    @settings(max_examples=40, deadline=None)
    def test_rms_non_negative_and_bounded(self, x):
        out = moving_rms(x, 30)
        assert (out >= 0).all()
        assert out.max() <= np.abs(x).max() + 1e-9
