"""Property-based tests of geometry and luminance primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.screen.illumination import screen_illuminance, von_kries_reflection
from repro.video.luminance import pixel_luminance
from repro.vision.geometry import Point, Rect, square_around

coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestRectProperties:
    @given(coord, coord, st.floats(min_value=0.0, max_value=100.0), st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=60, deadline=None)
    def test_intersection_contained_in_both(self, x0, y0, w, h):
        a = Rect(x0, y0, x0 + w, y0 + h)
        b = Rect(x0 + w / 3, y0 + h / 3, x0 + w, y0 + h)
        inter = a.intersect(b)
        if inter is not None:
            assert inter.x0 >= a.x0 and inter.x1 <= a.x1
            assert inter.x0 >= b.x0 and inter.x1 <= b.x1
            assert inter.area <= min(a.area, b.area) + 1e-9

    @given(coord, coord, st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_square_around_is_centered(self, x, y, side):
        sq = square_around(Point(x, y), side)
        assert np.isclose(sq.center.x, x)
        assert np.isclose(sq.center.y, y)
        assert np.isclose(sq.width, side)
        assert np.isclose(sq.height, side)


class TestIlluminationProperties:
    @given(
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=1e-4, max_value=2.0),
        st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_illuminance_monotone_in_luminance(self, lum, area, dist):
        a = screen_illuminance(lum, area, dist)
        b = screen_illuminance(lum * 2, area, dist)
        assert b >= a

    @given(
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=1e-4, max_value=2.0),
        st.floats(min_value=0.01, max_value=5.0),
        st.floats(min_value=0.01, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_illuminance_decreases_with_distance(self, lum, area, d1, d2):
        near, far = sorted((d1, d2))
        assert screen_illuminance(lum, area, near) >= screen_illuminance(lum, area, far)

    @given(
        st.floats(min_value=0.0, max_value=1e4),
        st.tuples(
            st.floats(min_value=0.01, max_value=0.99),
            st.floats(min_value=0.01, max_value=0.99),
            st.floats(min_value=0.01, max_value=0.99),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_von_kries_bounded_by_illuminance(self, lux, reflectance):
        out = von_kries_reflection(lux, np.array(reflectance))
        assert (out <= lux + 1e-9).all()
        assert (out >= 0).all()


class TestLuminanceProperties:
    @given(
        st.tuples(
            st.floats(min_value=0.0, max_value=255.0),
            st.floats(min_value=0.0, max_value=255.0),
            st.floats(min_value=0.0, max_value=255.0),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_luminance_bounded_by_channel_extremes(self, rgb):
        value = pixel_luminance(np.array(rgb))
        assert min(rgb) - 1e-9 <= value <= max(rgb) + 1e-9

    @given(
        st.tuples(
            st.floats(min_value=0.0, max_value=255.0),
            st.floats(min_value=0.0, max_value=255.0),
            st.floats(min_value=0.0, max_value=255.0),
        ),
        st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_luminance_is_linear(self, rgb, factor):
        base = pixel_luminance(np.array(rgb))
        scaled = pixel_luminance(np.array(rgb) * factor)
        assert np.isclose(scaled, base * factor, rtol=1e-9, atol=1e-9)
