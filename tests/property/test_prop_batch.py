"""Property: every ``*_batch`` kernel is bit-identical to a Python loop
of the per-clip functions, across ragged batches (length 0 and 1
included).  This is the contract that lets the engine split a batch into
arbitrary chunks and still produce serial-identical results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import (
    ClipBatch,
    dtw_distance_batch,
    find_peaks_batch,
    group_by_length,
    moving_rms_batch,
    moving_variance_batch,
    reflect_convolve_batch,
    threshold_filter_batch,
)
from repro.core.config import DetectorConfig
from repro.core.dtw import dtw_distance
from repro.core.features import extract_features_batch
from repro.core.peaks import find_peaks
from repro.core.preprocessing import (
    lowpass_filter,
    moving_average,
    moving_rms,
    moving_variance,
    preprocess,
    preprocess_batch,
    savgol_filter,
    threshold_filter,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64)

ragged_signals = st.lists(
    st.lists(finite, min_size=0, max_size=40).map(np.array),
    min_size=1,
    max_size=6,
)

nonempty_signals = st.lists(
    st.lists(finite, min_size=1, max_size=30).map(np.array),
    min_size=1,
    max_size=6,
)


def _pad(signals):
    return ClipBatch.from_signals(signals)


class TestClipBatchContainer:
    @given(ragged_signals)
    @settings(max_examples=40, deadline=None)
    def test_rows_round_trip(self, signals):
        batch = ClipBatch.from_signals(signals)
        assert len(batch) == len(signals)
        assert batch.max_length == max((s.size for s in signals), default=0)
        for original, row in zip(signals, batch.rows()):
            assert np.array_equal(np.asarray(original, dtype=np.float64), row)

    @given(ragged_signals)
    @settings(max_examples=40, deadline=None)
    def test_group_by_length_partitions(self, signals):
        batch = ClipBatch.from_signals(signals)
        seen = []
        previous = -1
        for length, indices in group_by_length(batch.lengths):
            assert length > previous  # ascending, no duplicate groups
            previous = length
            for i in indices:
                assert batch.lengths[i] == length
                seen.append(int(i))
        assert sorted(seen) == list(range(len(signals)))


class TestKernelsMatchPerClipLoop:
    @given(ragged_signals, st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_moving_variance(self, signals, window):
        batch = _pad(signals)
        for length, indices in group_by_length(batch.lengths):
            rows = batch.data[indices][:, :length]
            out = moving_variance_batch(rows, window)
            for g, i in enumerate(indices):
                assert np.array_equal(out[g], moving_variance(batch.row(i), window))

    @given(ragged_signals, st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_moving_rms(self, signals, window):
        batch = _pad(signals)
        for length, indices in group_by_length(batch.lengths):
            rows = batch.data[indices][:, :length]
            out = moving_rms_batch(rows, window)
            for g, i in enumerate(indices):
                assert np.array_equal(out[g], moving_rms(batch.row(i), window))

    @given(ragged_signals, st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_threshold(self, signals, cutoff):
        batch = _pad(signals)
        for length, indices in group_by_length(batch.lengths):
            rows = batch.data[indices][:, :length]
            out = threshold_filter_batch(rows, cutoff)
            for g, i in enumerate(indices):
                assert np.array_equal(out[g], threshold_filter(batch.row(i), cutoff))

    @given(ragged_signals, st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_convolution_stages(self, signals, window):
        batch = _pad(signals)
        for length, indices in group_by_length(batch.lengths):
            rows = batch.data[indices][:, :length]
            for g, i in enumerate(indices):
                row = batch.row(i)
                assert np.array_equal(
                    moving_average(row, window),
                    reflect_convolve_batch(
                        rows, np.full(window, 1.0 / window)
                    )[g],
                )
                assert np.array_equal(
                    lowpass_filter(row, 10.0), lowpass_filter(row, 10.0)
                )

    @given(ragged_signals, st.floats(min_value=0.01, max_value=5.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_find_peaks_batch(self, signals, prominence):
        batch = _pad(signals)
        batched = find_peaks_batch(batch.rows(), prominence)
        for row, peaks in zip(batch.rows(), batched):
            assert peaks == find_peaks(row, prominence)


class TestDtwBatch:
    @given(nonempty_signals, st.data())
    @settings(max_examples=40, deadline=None)
    def test_bitwise_equal_to_scalar(self, xs, data):
        ys = [
            np.array(
                data.draw(
                    st.lists(finite, min_size=1, max_size=30), label=f"y[{i}]"
                )
            )
            for i in range(len(xs))
        ]
        batched = dtw_distance_batch(xs, ys)
        for x, y, value in zip(xs, ys, batched):
            assert value == dtw_distance(x, y)

    def test_rejects_empty_sequences(self):
        with pytest.raises(ValueError):
            dtw_distance_batch([np.array([1.0])], [np.array([])])
        with pytest.raises(ValueError):
            dtw_distance_batch([np.array([1.0]), np.array([2.0])], [np.array([1.0])])


class TestPreprocessBatch:
    @given(ragged_signals)
    @settings(max_examples=20, deadline=None)
    def test_bitwise_equal_to_per_clip_loop(self, signals):
        config = DetectorConfig()
        batched = preprocess_batch(signals, config, config.peak_prominence_face)
        assert len(batched) == len(signals)
        for signal, got in zip(signals, batched):
            want = preprocess(signal, config, config.peak_prominence_face)
            for field in (
                "raw",
                "lowpassed",
                "variance",
                "thresholded",
                "rms",
                "savgol",
                "smoothed",
            ):
                assert np.array_equal(getattr(got, field), getattr(want, field)), field
            assert got.peaks == want.peaks

    def test_savgol_stage_is_row_independent(self):
        rng = np.random.default_rng(5)
        rows = rng.uniform(0.0, 4.0, size=(6, 64))
        full = np.stack([savgol_filter(row) for row in rows])
        assert np.array_equal(
            full, np.stack([savgol_filter(rows[i]) for i in range(6)])
        )


class TestExtractFeaturesBatchIdentity:
    def test_ragged_batch_equals_singletons(self):
        rng = np.random.default_rng(11)
        pairs = []
        for length in (150, 1, 120, 150, 40):
            t_lum = rng.uniform(80.0, 140.0, length)
            r_lum = rng.uniform(0.2, 0.9, length)
            pairs.append((t_lum, r_lum))
        config = DetectorConfig()
        batched = extract_features_batch(pairs, config)
        for pair, got in zip(pairs, batched):
            want = extract_features_batch([pair], config)[0]
            assert got.features == want.features
            assert got.delay_s == want.delay_s
            assert got.matches == want.matches
