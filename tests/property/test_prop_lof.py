"""Property-based tests of the LOF model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lof import LocalOutlierFactor


@st.composite
def cluster_and_query(draw):
    n = draw(st.integers(min_value=7, max_value=30))
    dim = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    cluster = rng.normal(0.0, 1.0, size=(n, dim))
    query = rng.normal(0.0, 1.0, size=dim)
    return cluster, query


class TestLofProperties:
    @given(cluster_and_query())
    @settings(max_examples=40, deadline=None)
    def test_score_positive(self, data):
        cluster, query = data
        model = LocalOutlierFactor(5).fit(cluster)
        assert model.score(query) > 0.0

    @given(cluster_and_query())
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariance(self, data):
        cluster, query = data
        rng = np.random.default_rng(1)
        shuffled = cluster[rng.permutation(cluster.shape[0])]
        a = LocalOutlierFactor(5).fit(cluster).score(query)
        b = LocalOutlierFactor(5).fit(shuffled).score(query)
        assert np.isclose(a, b)

    @given(cluster_and_query(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_scale_invariance(self, data, factor):
        """LOF is a density *ratio*: scaling all coordinates uniformly
        leaves the score unchanged."""
        cluster, query = data
        a = LocalOutlierFactor(5).fit(cluster).score(query)
        b = LocalOutlierFactor(5).fit(cluster * factor).score(query * factor)
        assert np.isclose(a, b, rtol=1e-9)

    @given(cluster_and_query(), st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_translation_invariance(self, data, offset):
        cluster, query = data
        a = LocalOutlierFactor(5).fit(cluster).score(query)
        b = LocalOutlierFactor(5).fit(cluster + offset).score(query + offset)
        assert np.isclose(a, b, rtol=1e-6, atol=1e-9)

    @given(cluster_and_query())
    @settings(max_examples=30, deadline=None)
    def test_far_point_scores_higher_than_center(self, data):
        cluster, _ = data
        model = LocalOutlierFactor(5).fit(cluster)
        center = cluster.mean(axis=0)
        spread = cluster.std()
        far = center + 100.0 * max(spread, 1e-3)
        assert model.score(far) >= model.score(center)
