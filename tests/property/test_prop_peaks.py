"""Property-based tests of the peak finder."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.peaks import find_peaks

signal = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=3, max_value=150),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)


class TestPeakProperties:
    @given(signal, st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_peaks_are_interior_local_maxima(self, x, prominence):
        for peak in find_peaks(x, prominence):
            assert 0 < peak.index < x.size - 1
            assert x[peak.index] >= x[peak.index - 1]
            assert x[peak.index] >= x[peak.index + 1]
            assert peak.height == x[peak.index]

    @given(signal, st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_prominences_respect_gate(self, x, prominence):
        for peak in find_peaks(x, prominence):
            assert peak.prominence >= prominence

    @given(signal)
    @settings(max_examples=60, deadline=None)
    def test_higher_gate_yields_subset(self, x):
        low = {p.index for p in find_peaks(x, 0.5)}
        high = {p.index for p in find_peaks(x, 5.0)}
        assert high <= low

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=3, max_value=150),
            # Values on a binary grid (multiples of 1/64) so that adding a
            # same-grid offset is exact and plateaus survive the shift.
            elements=st.integers(min_value=-6400, max_value=6400).map(lambda k: k / 64.0),
        ),
        st.integers(min_value=-6400, max_value=6400).map(lambda k: k / 64.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_shift_invariance(self, x, offset):
        a = [(p.index, p.prominence) for p in find_peaks(x, 1.0)]
        b = [(p.index, p.prominence) for p in find_peaks(x + offset, 1.0)]
        assert a == b

    @given(signal)
    @settings(max_examples=60, deadline=None)
    def test_prominence_bounded_by_range(self, x):
        span = x.max() - x.min()
        for peak in find_peaks(x, 0.01):
            assert peak.prominence <= span + 1e-12

    @given(signal)
    @settings(max_examples=60, deadline=None)
    def test_peaks_sorted_and_distinct(self, x):
        indices = [p.index for p in find_peaks(x, 0.1)]
        assert indices == sorted(set(indices))
