"""Property-based tests of the network substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.channel import NetworkChannel
from repro.net.jitterbuffer import JitterBuffer
from repro.net.packet import Packetizer
from repro.video.codec import VideoCodec
from repro.video.frame import blank_frame


@st.composite
def frame_train(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    codec = VideoCodec()
    packetizer = Packetizer(mtu_bytes=draw(st.integers(min_value=64, max_value=400)))
    packets = []
    for i in range(n):
        encoded = codec.encode(blank_frame(48, 48, value=float(i % 255), timestamp=i * 0.1))
        packets.extend(packetizer.packetize(encoded, send_time=i * 0.1))
    return packets


class TestChannelProperties:
    @given(
        frame_train(),
        st.floats(min_value=0.0, max_value=0.5),
        st.floats(min_value=0.0, max_value=0.1),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_arrivals_never_precede_sends(self, packets, delay, jitter, seed):
        channel = NetworkChannel(base_delay_s=delay, jitter_s=jitter, seed=seed)
        for delivered in channel.transmit_all(packets):
            assert delivered.arrival_time >= delivered.packet.send_time + delay - 1e-12

    @given(frame_train(), st.floats(min_value=0.0, max_value=0.9), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_delivered_is_subset_of_sent(self, packets, loss, seed):
        channel = NetworkChannel(loss_rate=loss, seed=seed)
        delivered = channel.transmit_all(packets)
        assert len(delivered) <= len(packets)
        sent_seqs = {p.sequence for p in packets}
        assert all(d.packet.sequence in sent_seqs for d in delivered)

    @given(frame_train(), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_stats_add_up(self, packets, seed):
        channel = NetworkChannel(loss_rate=0.3, seed=seed)
        delivered = channel.transmit_all(packets)
        assert channel.stats.sent == len(packets)
        assert channel.stats.lost == len(packets) - len(delivered)


class TestBufferProperties:
    @given(frame_train(), st.floats(min_value=0.0, max_value=0.3), st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_playout_monotonic_and_no_duplicates(self, packets, jitter, seed):
        channel = NetworkChannel(base_delay_s=0.05, jitter_s=jitter, seed=seed)
        buffer = JitterBuffer(playout_delay_s=0.15)
        for delivered in channel.transmit_all(packets):
            buffer.push(delivered)
        seen = []
        for tick in range(80):
            frame = buffer.playout(tick * 0.05)
            if frame is not None:
                seen.append(frame.frame_id)
        assert seen == sorted(set(seen))

    @given(frame_train(), st.floats(min_value=0.0, max_value=0.8), st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_conservation(self, packets, loss, seed):
        """Every frame is eventually played, lost, or still pending."""
        channel = NetworkChannel(loss_rate=loss, seed=seed)
        buffer = JitterBuffer(playout_delay_s=0.1)
        total_frames = len({p.frame_id for p in packets})
        delivered = channel.transmit_all(packets)
        arrived_frames = len({d.packet.frame_id for d in delivered})
        for d in delivered:
            buffer.push(d)
        played = 0
        for tick in range(100):
            if buffer.playout(tick * 0.1) is not None:
                played += 1
        # Frames fully lost in the channel never reach the buffer at all.
        accounted = (
            played
            + buffer.stats.lost_frames
            + buffer.stats.skipped_frames
            + buffer.pending_count
        )
        assert accounted == arrived_frames
        assert arrived_frames <= total_frames
