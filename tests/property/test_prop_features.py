"""Property-based tests of matching, delay removal, and feature ranges."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DetectorConfig
from repro.core.delay import align_signals, estimate_delay
from repro.core.features import extract_features, normalize_unit
from repro.core.matching import match_changes

times = st.lists(
    st.floats(min_value=0.0, max_value=15.0, allow_nan=False),
    min_size=0,
    max_size=8,
).map(lambda ts: np.array(sorted(ts)))


@st.composite
def spaced_times(draw, min_gap=2.1, max_count=6):
    """Sorted change times with pairwise gaps > 2x the match tolerance,
    so a one-to-one greedy matching is unambiguous."""
    gaps = draw(
        st.lists(
            st.floats(min_value=min_gap, max_value=6.0, allow_nan=False),
            min_size=1,
            max_size=max_count,
        )
    )
    start = draw(st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
    return start + np.cumsum(np.array(gaps)) - gaps[0]


class TestMatchingProperties:
    @given(times, times, st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_one_to_one(self, t, r, tol):
        matches = match_changes(t, r, tol)
        assert len({m.transmitted_index for m in matches}) == len(matches)
        assert len({m.received_index for m in matches}) == len(matches)

    @given(times, times, st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_all_pairs_within_tolerance(self, t, r, tol):
        for m in match_changes(t, r, tol):
            assert abs(m.time_difference_s) <= tol + 1e-12

    @given(spaced_times(), st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=60, deadline=None)
    def test_planted_delay_recovered(self, t, delay):
        # Changes spaced > 2x tolerance apart: the matching is unambiguous
        # and the estimator must recover the planted delay exactly.
        matches = match_changes(t, t + delay, tolerance_s=1.0)
        estimated = estimate_delay(matches)
        assert estimated is not None
        assert abs(estimated - delay) < 1e-9

    @given(times, times, st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_symmetry_of_match_count(self, t, r, tol):
        forward = match_changes(t, r, tol)
        backward = match_changes(r, t, tol)
        assert len(forward) == len(backward)


class TestAlignProperties:
    @given(
        st.integers(min_value=10, max_value=100),
        st.integers(min_value=-5, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_alignment_undoes_integer_shift(self, n, shift_samples):
        rng = np.random.default_rng(abs(shift_samples) + n)
        x = rng.normal(size=n)
        if shift_samples >= 0:
            y = np.concatenate([np.zeros(shift_samples), x])[:n]
        else:
            y = np.concatenate([x[-shift_samples:], np.zeros(-shift_samples)])
        t_a, r_a = align_signals(x, y, shift_samples / 10.0, 10.0)
        overlap = min(t_a.size, r_a.size)
        if shift_samples >= 0:
            assert np.allclose(t_a[: overlap - shift_samples], r_a[: overlap - shift_samples])


class TestNormalizeProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_output_in_unit_interval(self, values):
        out = normalize_unit(np.array(values))
        assert out.min() >= 0.0
        assert out.max() <= 1.0


class TestFeatureRanges:
    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_features_always_in_sane_ranges(self, seed):
        """Whatever noisy signals come in, features stay bounded."""
        rng = np.random.default_rng(seed)
        t = 150.0 + np.cumsum(rng.normal(0, rng.uniform(0.1, 8.0), 150))
        r = 120.0 + np.cumsum(rng.normal(0, rng.uniform(0.1, 4.0), 150))
        fx = extract_features(np.clip(t, 0, 255), np.clip(r, 0, 255), DetectorConfig())
        z = fx.features
        assert 0.0 <= z.z1 <= 1.0
        assert 0.0 <= z.z2 <= 1.0
        assert -1.0 <= z.z3 <= 1.0
        assert z.z4 >= 0.0
        assert np.isfinite(z.as_array()).all()
