"""Property: cached extraction is indistinguishable from uncached.

The engine memoizes ``extract_features`` by content hash; for any clip
whatsoever, routing through the cache (cold or warm) must return exactly
what a direct call returns — otherwise cached runs would silently drift
from uncached ones.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DetectorConfig
from repro.core.features import extract_features
from repro.engine import ExecutionEngine, FeatureCache

CONFIG = DetectorConfig()


@st.composite
def random_clip(draw):
    """A random-but-plausible luminance pair (steps + noise)."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n_steps = draw(st.integers(min_value=0, max_value=4))
    rng = np.random.default_rng(seed)
    t = np.full(150, 180.0)
    for _ in range(n_steps):
        at = int(rng.integers(10, 140))
        t[at:] += float(rng.uniform(-60, 60))
    scale = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    noise = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    r = 120.0 + scale * t + rng.normal(0.0, noise, 150)
    return t, r


class TestCacheTransparency:
    @given(random_clip())
    @settings(max_examples=40, deadline=None)
    def test_cached_equals_uncached(self, clip):
        t, r = clip
        direct = extract_features(t, r, CONFIG).features
        with ExecutionEngine(jobs=1) as engine:
            cold = engine.extract_features_cached(t, r, CONFIG)
            warm = engine.extract_features_cached(t, r, CONFIG)
        assert cold == direct
        assert warm == direct

    @given(random_clip(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_key_collisions_do_not_cross_clips(self, clip, seed):
        """Two different clips never read each other's cache entry."""
        t, r = clip
        rng = np.random.default_rng(seed)
        t2 = t + rng.uniform(0.1, 1.0)
        cache = FeatureCache()
        with ExecutionEngine(jobs=1, cache=cache) as engine:
            first = engine.extract_features_cached(t, r, CONFIG)
            second = engine.extract_features_cached(t2, r, CONFIG)
        assert first == extract_features(t, r, CONFIG).features
        assert second == extract_features(t2, r, CONFIG).features
