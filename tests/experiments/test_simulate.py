"""Session builders: determinism and role correctness."""

import numpy as np
import pytest

from repro.core.features import extract_features
from repro.core.luminance import received_luminance_signal, transmitted_luminance_signal
from repro.experiments.profiles import Environment
from repro.experiments.simulate import (
    default_user,
    simulate_adaptive_attack_session,
    simulate_attack_session,
    simulate_genuine_session,
    simulate_replay_attack_session,
)


@pytest.fixture(scope="module")
def env():
    return Environment(frame_size=(72, 72), verifier_frame_size=(48, 48))


def _features(record):
    t = transmitted_luminance_signal(record.transmitted)
    r = received_luminance_signal(record.received).luminance
    return extract_features(t, r).features


class TestDeterminism:
    def test_same_seed_identical_session(self, env):
        a = simulate_genuine_session(duration_s=5.0, seed=42, env=env)
        b = simulate_genuine_session(duration_s=5.0, seed=42, env=env)
        assert np.array_equal(a.transmitted[10].pixels, b.transmitted[10].pixels)
        assert np.array_equal(a.received[10].pixels, b.received[10].pixels)

    def test_different_seeds_differ(self, env):
        a = simulate_genuine_session(duration_s=5.0, seed=1, env=env)
        b = simulate_genuine_session(duration_s=5.0, seed=2, env=env)
        assert not np.array_equal(a.received[10].pixels, b.received[10].pixels)


class TestRoleSeparation:
    def test_genuine_features_look_live(self, env):
        features = _features(simulate_genuine_session(duration_s=15.0, seed=7, env=env))
        assert features.z1 >= 0.5
        assert features.z3 > 0.5

    def test_attack_decoupled(self, env):
        features = _features(simulate_attack_session(duration_s=15.0, seed=7, env=env))
        assert features.z3 < 0.8  # trend never matches the challenge

    def test_adaptive_with_zero_delay_looks_live(self, env):
        record = simulate_adaptive_attack_session(
            processing_delay_s=0.0, duration_s=15.0, seed=8, env=env
        )
        features = _features(record)
        # A perfect zero-delay forgery is indistinguishable by design.
        assert features.z1 >= 0.5
        assert features.z3 > 0.5

    def test_adaptive_with_long_delay_breaks(self, env):
        record = simulate_adaptive_attack_session(
            processing_delay_s=2.5, duration_s=15.0, seed=8, env=env
        )
        features = _features(record)
        assert features.z3 < 0.8 or features.z1 < 1.0

    def test_replay_session_runs(self, env):
        record = simulate_replay_attack_session(duration_s=15.0, seed=9, env=env)
        assert len(record.received) == 150


class TestDefaultUser:
    def test_stable(self):
        assert np.allclose(
            default_user().face.skin_reflectance, default_user().face.skin_reflectance
        )
