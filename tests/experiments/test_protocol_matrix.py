"""run_protocol_matrix: the binding layer's added value, end to end."""

import pytest

from repro.engine import ExecutionEngine
from repro.experiments.profiles import Environment
from repro.experiments.protocolmatrix import (
    PROTOCOL_ROLES,
    run_protocol_matrix,
)

SEED = 211


@pytest.fixture(scope="module")
def env():
    return Environment(frame_size=(64, 64), verifier_frame_size=(40, 40))


@pytest.fixture(scope="module")
def matrix(env):
    return run_protocol_matrix(
        roles=("genuine", "replay"),
        sessions_per_cell=1,
        clips=2,
        enroll_sessions=6,
        env=env,
        seed=SEED,
    )


class TestProtocolMatrix:
    def test_replayed_schedule_is_replay_not_fake(self, matrix):
        """The acceptance headline: with the protocol on, a replayed
        recording of an earlier call is attributed as REPLAY — and it is
        never accepted as live, with or without the protocol."""
        on = matrix.cell("replay", True)
        assert on.statuses == ("replay",)
        assert on.bindings.get("replay", 0) > 0
        assert "live" not in matrix.cell("replay", True).statuses

    def test_replay_is_condemned_in_both_columns(self, matrix):
        assert matrix.cell("replay", False).condemned_fraction + \
            matrix.cell("replay", True).condemned_fraction >= 1.0
        on = matrix.cell("replay", True).condemned_fraction
        assert on == pytest.approx(1.0)

    def test_genuine_keeps_its_verdict_under_the_protocol(self, matrix):
        off = matrix.cell("genuine", False)
        on = matrix.cell("genuine", True)
        assert off.statuses == on.statuses == ("live",)
        assert on.bindings.get("bound", 0) == 2  # both clips bound
        assert on.acks_ok == on.sessions  # the handshake round-tripped

    def test_lines_render_one_row_per_cell(self, matrix):
        assert len(matrix.lines()) == len(matrix.cells) + 1
        assert matrix.cell("genuine", True) in matrix.cells

    def test_unknown_cell_and_bad_arguments_raise(self, matrix, env):
        with pytest.raises(KeyError):
            matrix.cell("genuine", None)
        with pytest.raises(ValueError):
            run_protocol_matrix(roles=("alien",), env=env, seed=SEED)
        with pytest.raises(ValueError):
            run_protocol_matrix(sessions_per_cell=0, env=env, seed=SEED)
        with pytest.raises(ValueError):
            run_protocol_matrix(clips=9, env=env, seed=SEED)

    def test_roles_cover_the_threat_matrix(self):
        assert set(PROTOCOL_ROLES) == {"genuine", "replay", "stale", "attack"}


class TestJobsIdentity:
    def test_pool_matches_serial_at_jobs_1_2_4(self, env):
        """Satellite acceptance: the matrix is bit-identical at any
        worker count (each cell is a self-seeded task)."""
        results = []
        for jobs in (1, 2, 4):
            with ExecutionEngine(jobs=jobs) as engine:
                results.append(
                    run_protocol_matrix(
                        roles=("genuine",),
                        sessions_per_cell=1,
                        clips=1,
                        enroll_sessions=4,
                        env=env,
                        seed=SEED,
                        engine=engine,
                    )
                )
        assert results[0].cells == results[1].cells == results[2].cells
