"""Population and environment profiles."""

import numpy as np
import pytest

from repro.experiments.profiles import (
    DEFAULT_ENVIRONMENT,
    Environment,
    UserProfile,
    make_population,
)
from repro.vision.face_model import make_face


class TestPopulation:
    def test_default_size_is_ten(self):
        assert len(make_population()) == 10

    def test_unique_names(self):
        names = [u.name for u in make_population()]
        assert len(set(names)) == 10

    def test_skin_tone_diversity(self):
        # The paper's population spans dark and light skin.
        reflectances = [u.face.skin_reflectance.mean() for u in make_population()]
        assert max(reflectances) > 2 * min(reflectances)

    def test_some_wear_glasses(self):
        population = make_population()
        assert any(u.face.has_glasses for u in population)
        assert not all(u.face.has_glasses for u in population)

    def test_deterministic(self):
        a = make_population(seed=9)
        b = make_population(seed=9)
        assert all(
            np.allclose(x.face.skin_reflectance, y.face.skin_reflectance)
            for x, y in zip(a, b)
        )

    def test_movement_within_expression_bounds(self):
        for user in make_population(20):
            assert 0.0 <= user.movement_amplitude <= 0.04

    def test_bad_count(self):
        with pytest.raises(ValueError):
            make_population(0)


class TestEnvironment:
    def test_paper_defaults(self):
        assert DEFAULT_ENVIRONMENT.screen.diagonal_in == 27.0
        assert DEFAULT_ENVIRONMENT.screen.brightness == 0.85
        assert DEFAULT_ENVIRONMENT.fps == 10.0

    def test_replace_sweeps_one_knob(self):
        loud = DEFAULT_ENVIRONMENT.replace(prover_ambient_lux=240.0)
        assert loud.prover_ambient_lux == 240.0  # reprolint: disable=R004
        assert loud.screen == DEFAULT_ENVIRONMENT.screen

    def test_validation(self):
        with pytest.raises(ValueError):
            Environment(viewing_distance_m=0.0)
        with pytest.raises(ValueError):
            Environment(prover_ambient_lux=-5.0)


class TestUserProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            UserProfile(name="x", face=make_face("x"), seed=0, movement_amplitude=-1.0)
