"""Dataset generation, selection, and disk cache."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.experiments.dataset import (
    ATTACK,
    GENUINE,
    FeatureDataset,
    build_dataset,
    clip_from_session,
)
from repro.experiments.profiles import Environment, make_population
from repro.experiments.simulate import simulate_genuine_session


@pytest.fixture(scope="module")
def tiny_dataset(tmp_path_factory):
    env = Environment(frame_size=(64, 64), verifier_frame_size=(48, 48))
    return build_dataset(
        population=make_population(2, seed=123),
        clips_per_role=2,
        env=env,
        cache_dir=tmp_path_factory.mktemp("ds"),
    )


class TestBuild:
    def test_counts(self, tiny_dataset):
        assert len(tiny_dataset) == 8  # 2 users x 2 roles x 2 clips
        assert len(tiny_dataset.users) == 2

    def test_selectors(self, tiny_dataset):
        user = tiny_dataset.users[0]
        assert len(tiny_dataset.select(user)) == 4
        assert len(tiny_dataset.select(user, GENUINE)) == 2
        assert len(tiny_dataset.select(role=ATTACK)) == 4

    def test_feature_matrix_shape(self, tiny_dataset):
        X = tiny_dataset.features_of(role=GENUINE)
        assert X.shape == (4, 4)

    def test_empty_selection(self, tiny_dataset):
        assert tiny_dataset.features_of("nonexistent").shape == (0, 4)

    def test_signals_have_clip_length(self, tiny_dataset):
        for inst in tiny_dataset.instances:
            assert inst.transmitted_luminance.size == 150
            assert inst.received_luminance.size == 150


class TestCache:
    def test_round_trip_preserves_everything(self, tmp_path):
        env = Environment(frame_size=(64, 64), verifier_frame_size=(48, 48))
        population = make_population(1, seed=5)
        kwargs = dict(
            population=population,
            clips_per_role=2,
            env=env,
            cache_dir=tmp_path,
        )
        first = build_dataset(**kwargs)
        second = build_dataset(**kwargs)  # served from cache
        assert len(first) == len(second)
        for a, b in zip(first.instances, second.instances):
            assert a.user == b.user
            assert a.role == b.role
            assert a.seed == b.seed
            assert a.features == b.features
            assert np.allclose(a.transmitted_luminance, b.transmitted_luminance)
            assert np.allclose(a.received_luminance, b.received_luminance)

    def test_cache_file_created(self, tmp_path):
        env = Environment(frame_size=(64, 64), verifier_frame_size=(48, 48))
        build_dataset(
            population=make_population(1, seed=6),
            clips_per_role=1,
            env=env,
            cache_dir=tmp_path,
        )
        assert list(tmp_path.glob("dataset_*.npz"))

    def test_config_change_invalidates_key(self, tmp_path):
        env = Environment(frame_size=(64, 64), verifier_frame_size=(48, 48))
        population = make_population(1, seed=7)
        build_dataset(population=population, clips_per_role=1, env=env, cache_dir=tmp_path)
        build_dataset(
            population=population,
            clips_per_role=1,
            env=env,
            config=DetectorConfig(lof_threshold=2.0),
            cache_dir=tmp_path,
        )
        assert len(list(tmp_path.glob("dataset_*.npz"))) == 2


class TestClipFromSession:
    def test_extracts_consistent_instance(self):
        env = Environment(frame_size=(64, 64), verifier_frame_size=(48, 48))
        record = simulate_genuine_session(duration_s=15.0, seed=31, env=env)
        clip = clip_from_session(record, "u", GENUINE, 31, DetectorConfig())
        assert clip.is_genuine
        assert clip.transmitted_luminance.size == 150
        assert np.isfinite(clip.features.as_array()).all()

    def test_bad_role_rejected(self):
        with pytest.raises(ValueError):
            build_dataset(
                population=make_population(1, seed=8),
                clips_per_role=1,
                roles=("bogus",),
                use_cache=False,
            )

    def test_merged_with(self, tiny_dataset):
        merged = tiny_dataset.merged_with(tiny_dataset)
        assert len(merged) == 2 * len(tiny_dataset)
