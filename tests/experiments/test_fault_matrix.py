"""run_fault_matrix: deterministic, crash-free, gracefully degrading."""

import numpy as np
import pytest

from repro.core.streaming import CallStatus, StreamingVerifier
from repro.core.config import DetectorConfig
from repro.core.detector import LivenessDetector
from repro.core.features import FeatureVector
from repro.engine import ExecutionEngine
from repro.experiments.faultmatrix import (
    DEFAULT_FAULT_SPEC,
    run_fault_matrix,
    simulate_faulted_session,
)
from repro.experiments.profiles import Environment
from repro.faults import FaultSpec

SEVERITIES = (0.0, 1.0)


@pytest.fixture(scope="module")
def env():
    return Environment(frame_size=(72, 72), verifier_frame_size=(48, 48))


@pytest.fixture(scope="module")
def matrix(env):
    return run_fault_matrix(
        severities=SEVERITIES,
        sessions_per_cell=1,
        duration_s=15.0,
        enroll_sessions=8,
        env=env,
        seed=97,
    )


class TestFaultMatrix:
    def test_full_grid_including_total_dropout_never_crashes(self, matrix):
        # severity 1.0 of the default spec rides every fault mode at once;
        # reaching here at all is the no-crash half of the contract.
        assert len(matrix.cells) == len(SEVERITIES) * 2

    def test_genuine_users_never_read_as_attackers(self, matrix):
        for severity in SEVERITIES:
            cell = matrix.cell(severity, "genuine")
            assert cell.attacker_fraction == pytest.approx(0.0), (
                f"severity {severity}: genuine flagged as attacker "
                f"(statuses={cell.statuses})"
            )

    def test_clean_channel_still_flags_attacks(self, matrix):
        assert matrix.cell(0.0, "attack").attacker_fraction == pytest.approx(1.0)

    def test_degradation_is_gated_not_misjudged(self, matrix):
        # At full severity the gate must be withholding clips...
        worst = matrix.cell(1.0, "genuine")
        assert worst.gated_fraction > 0.0
        # ...and the clean cell must not be gated at all.
        assert matrix.cell(0.0, "genuine").gated_fraction == pytest.approx(0.0)

    def test_same_seed_is_reproducible(self, matrix, env):
        again = run_fault_matrix(
            severities=SEVERITIES,
            sessions_per_cell=1,
            duration_s=15.0,
            enroll_sessions=8,
            env=env,
            seed=97,
        )
        assert again.cells == matrix.cells

    def test_parallel_engine_is_bit_identical_and_counts_clips(self, matrix, env):
        with ExecutionEngine(jobs=2) as engine:
            parallel = run_fault_matrix(
                severities=SEVERITIES,
                sessions_per_cell=1,
                duration_s=15.0,
                enroll_sessions=8,
                env=env,
                seed=97,
                engine=engine,
            )
            report = engine.perf_report()
        assert parallel.cells == matrix.cells
        assert report.counters["clips_total"] == sum(
            c.attempts_total for c in matrix.cells
        )
        assert "clips_inconclusive" in report.counters

    def test_unknown_cell_raises(self, matrix):
        with pytest.raises(KeyError):
            matrix.cell(0.123, "genuine")

    def test_lines_render_one_row_per_cell(self, matrix):
        assert len(matrix.lines()) == len(matrix.cells) + 1


class TestFaultedSession:
    def test_same_seed_same_schedule_same_verdict(self, env):
        rng = np.random.default_rng(1)
        bank = [
            FeatureVector(
                z1=1.0,
                z2=1.0,
                z3=float(rng.uniform(0.9, 1.0)),
                z4=float(rng.uniform(0.02, 0.2)),
            )
            for _ in range(20)
        ]
        detector = LivenessDetector(DetectorConfig()).fit(bank)
        spec = DEFAULT_FAULT_SPEC.scaled(0.5)
        statuses = []
        for _ in range(2):
            record = simulate_faulted_session(
                "genuine", spec, duration_s=15.0, seed=31, env=env
            )
            verifier = StreamingVerifier(detector)
            for t_frame, r_frame in zip(record.transmitted, record.received):
                verifier.push(t_frame, r_frame)
            statuses.append(verifier.state.status)
        assert statuses[0] == statuses[1]

    def test_total_landmark_dropout_yields_inconclusive(self, env):
        spec = FaultSpec(landmark_dropout_rate=1.0)
        record = simulate_faulted_session(
            "genuine", spec, duration_s=15.0, seed=7, env=env
        )
        rng = np.random.default_rng(2)
        bank = [
            FeatureVector(z1=1.0, z2=1.0, z3=0.95, z4=float(rng.uniform(0.02, 0.2)))
            for _ in range(20)
        ]
        verifier = StreamingVerifier(LivenessDetector(DetectorConfig()).fit(bank))
        for t_frame, r_frame in zip(record.transmitted, record.received):
            verifier.push(t_frame, r_frame)
        state = verifier.state
        assert state.status is CallStatus.INCONCLUSIVE
        assert state.conclusive_attempts == 0

    def test_unknown_role_rejected(self, env):
        with pytest.raises(ValueError):
            simulate_faulted_session("alien", FaultSpec(), duration_s=5.0, env=env)
