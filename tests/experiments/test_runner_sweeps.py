"""Environment-sweep runner mechanics on synthetic datasets.

The expensive sweep content is covered by the benchmarks; these tests
validate the *protocol plumbing* — especially the nominal-training rule
for environment sweeps — on hand-built feature banks.
"""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.features import FeatureVector
from repro.experiments.dataset import ATTACK, GENUINE, ClipInstance, FeatureDataset
from repro.experiments.runner import _evaluate_dataset


def _dataset(genuine_center, attack_center, n=30, spread=0.04, seed=0, user="u0"):
    rng = np.random.default_rng(seed)
    instances = []
    for i in range(n):
        z = np.clip(np.asarray(genuine_center) + spread * rng.normal(size=4), -1, 2)
        instances.append(
            ClipInstance(user, GENUINE, i, FeatureVector(*z), np.zeros(150), np.zeros(150))
        )
    for i in range(n):
        z = np.clip(np.asarray(attack_center) + spread * rng.normal(size=4), -1, 2)
        instances.append(
            ClipInstance(user, ATTACK, i, FeatureVector(*z), np.zeros(150), np.zeros(150))
        )
    return FeatureDataset(instances)


NOMINAL_GENUINE = (1.0, 1.0, 0.95, 0.08)
ATTACK_CENTER = (0.3, 0.4, -0.3, 0.9)


class TestNominalTrainingRule:
    def test_degenerate_condition_caught_only_with_nominal_training(self):
        """In a reflection-free environment genuine AND attack clips both
        collapse to (0, 0, ...).  Per-condition training then accepts
        everyone; nominal training correctly rejects everyone."""
        config = DetectorConfig()
        nominal = _dataset(NOMINAL_GENUINE, ATTACK_CENTER, seed=2)
        degenerate = _dataset((0.0, 0.0, -0.2, 0.8), (0.0, 0.0, -0.3, 0.85), seed=3)

        # Per-condition training: flattering TAR, no security.
        tar_pc, _, trr_pc, _ = _evaluate_dataset(
            degenerate, config, rounds=5, train_size=15, seed=1
        )
        assert tar_pc > 0.8
        assert trr_pc < 0.5

        # Nominal training: the degenerate clips are outliers for
        # everyone -> low TAR, high TRR (the honest picture).
        tar_nom, _, trr_nom, _ = _evaluate_dataset(
            degenerate, config, rounds=5, train_size=15, seed=1, train_dataset=nominal
        )
        assert tar_nom < 0.3
        assert trr_nom > 0.9

    def test_matching_conditions_agree(self):
        """When the swept condition IS the nominal one, both protocols
        give the same picture."""
        config = DetectorConfig()
        nominal = _dataset(NOMINAL_GENUINE, ATTACK_CENTER, seed=5)
        same = _dataset(NOMINAL_GENUINE, ATTACK_CENTER, seed=6)
        tar_pc, _, trr_pc, _ = _evaluate_dataset(
            same, config, rounds=5, train_size=15, seed=4
        )
        tar_nom, _, trr_nom, _ = _evaluate_dataset(
            same, config, rounds=5, train_size=15, seed=40, train_dataset=nominal
        )
        assert tar_nom == pytest.approx(tar_pc, abs=0.15)
        assert trr_nom == pytest.approx(trr_pc, abs=0.1)

    def test_missing_user_in_train_dataset_raises(self):
        config = DetectorConfig()
        test_ds = _dataset(NOMINAL_GENUINE, ATTACK_CENTER, seed=8, user="u_new")
        train_ds = _dataset(NOMINAL_GENUINE, ATTACK_CENTER, seed=9, user="u_other")
        with pytest.raises(ValueError):
            _evaluate_dataset(
                test_ds, config, rounds=2, train_size=10, seed=7, train_dataset=train_ds
            )
