"""Evaluation metrics."""

import numpy as np
import pytest

from repro.experiments.metrics import (
    equal_error_rate,
    rates_at_threshold,
    true_acceptance_rate,
    true_rejection_rate,
)


class TestRates:
    def test_tar_counts_accepts(self):
        scores = np.array([1.0, 2.0, 4.0, 5.0])
        assert true_acceptance_rate(scores, 3.0) == pytest.approx(0.5)

    def test_trr_counts_rejects(self):
        scores = np.array([1.0, 2.0, 4.0, 5.0])
        assert true_rejection_rate(scores, 3.0) == pytest.approx(0.5)

    def test_threshold_inclusive_for_accept(self):
        assert true_acceptance_rate(np.array([3.0]), 3.0) == pytest.approx(1.0)
        assert true_rejection_rate(np.array([3.0]), 3.0) == pytest.approx(0.0)

    def test_summary_consistency(self):
        genuine = np.array([1.0, 1.5, 6.0])
        attacks = np.array([2.0, 8.0, 9.0])
        summary = rates_at_threshold(genuine, attacks, 3.0)
        assert summary.tar == pytest.approx(2 / 3)
        assert summary.trr == pytest.approx(2 / 3)
        assert summary.far == pytest.approx(1 - summary.trr)
        assert summary.frr == pytest.approx(1 - summary.tar)

    def test_empty_scores_rejected(self):
        with pytest.raises(ValueError):
            true_acceptance_rate(np.array([]), 3.0)


class TestEer:
    def test_perfect_separation_gives_zero(self):
        genuine = np.array([1.0, 1.1, 1.2])
        attacks = np.array([9.0, 9.5, 10.0])
        eer, threshold = equal_error_rate(genuine, attacks)
        assert eer == pytest.approx(0.0)
        assert 1.2 <= threshold < 9.0

    def test_total_overlap_gives_half(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        eer, _ = equal_error_rate(scores, scores)
        assert eer == pytest.approx(0.5, abs=0.15)

    def test_known_crossing(self):
        genuine = np.array([1.0, 2.0, 3.0, 4.0])
        attacks = np.array([3.5, 4.5, 5.5, 6.5])
        eer, threshold = equal_error_rate(genuine, attacks)
        assert eer == pytest.approx(0.25, abs=0.01)

    def test_eer_bounded(self):
        rng = np.random.default_rng(0)
        genuine = rng.normal(2.0, 1.0, 100)
        attacks = rng.normal(5.0, 1.0, 100)
        eer, _ = equal_error_rate(genuine, attacks)
        assert 0.0 <= eer <= 0.5
