"""Experiment runners: protocol mechanics on synthetic feature banks.

These tests validate the *protocol* (splits, rounds, voting, sweeps) on
hand-built datasets where the right answer is known, rather than paying
for full simulations.
"""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.features import FeatureVector
from repro.experiments.dataset import ATTACK, GENUINE, ClipInstance, FeatureDataset
from repro.experiments.runner import (
    run_attempts,
    run_forgery_delay,
    run_overall,
    run_threshold_sweep,
    run_training_size,
    score_round,
)


def _instance(user, role, z, seed=0, signals=None):
    t_sig, r_sig = signals if signals is not None else (np.zeros(150), np.zeros(150))
    return ClipInstance(
        user=user,
        role=role,
        seed=seed,
        features=FeatureVector(*z),
        transmitted_luminance=t_sig,
        received_luminance=r_sig,
    )


@pytest.fixture(scope="module")
def synthetic_dataset():
    """Two users with clearly separable genuine/attack features."""
    rng = np.random.default_rng(0)
    instances = []
    for user in ("u0", "u1"):
        for i in range(40):
            z = (
                1.0,
                float(rng.choice([1.0, 1.0, 0.667])),
                float(rng.uniform(0.85, 1.0)),
                float(rng.uniform(0.02, 0.2)),
            )
            instances.append(_instance(user, GENUINE, z, seed=i))
        for i in range(40):
            z = (
                float(rng.uniform(0.0, 0.7)),
                float(rng.uniform(0.0, 0.8)),
                float(rng.uniform(-0.9, 0.4)),
                float(rng.uniform(0.4, 1.5)),
            )
            instances.append(_instance(user, ATTACK, z, seed=i))
    return FeatureDataset(instances)


class TestScoreRound:
    def test_split_sizes(self, synthetic_dataset):
        genuine = synthetic_dataset.features_of("u0", GENUINE)
        attacks = synthetic_dataset.features_of("u0", ATTACK)
        g, a = score_round(genuine, attacks, 20, DetectorConfig(), np.random.default_rng(1))
        assert g.size == 20  # 40 - 20 held out
        assert a.size == 40

    def test_train_pool_mode_tests_everything(self, synthetic_dataset):
        genuine = synthetic_dataset.features_of("u0", GENUINE)
        pool = synthetic_dataset.features_of("u1", GENUINE)
        g, _ = score_round(
            genuine, np.empty((0, 4)), 20, DetectorConfig(), np.random.default_rng(1), train_pool=pool
        )
        assert g.size == 40

    def test_consuming_all_data_raises(self, synthetic_dataset):
        genuine = synthetic_dataset.features_of("u0", GENUINE)
        with pytest.raises(ValueError):
            score_round(genuine, np.empty((0, 4)), 40, DetectorConfig(), np.random.default_rng(1))


class TestRunOverall:
    def test_separable_dataset_scores_high(self, synthetic_dataset):
        result = run_overall(synthetic_dataset, rounds=5, train_size=20)
        assert result.avg_tar_own > 0.85
        assert result.avg_trr > 0.9
        assert len(result.per_user) == 2

    def test_requires_two_users(self, synthetic_dataset):
        solo = FeatureDataset(synthetic_dataset.select("u0"))
        with pytest.raises(ValueError):
            run_overall(solo, rounds=2)

    def test_deterministic_given_seed(self, synthetic_dataset):
        a = run_overall(synthetic_dataset, rounds=3, seed=5)
        b = run_overall(synthetic_dataset, rounds=3, seed=5)
        assert a.avg_tar_own == b.avg_tar_own


class TestThresholdSweep:
    def test_far_increases_frr_decreases(self, synthetic_dataset):
        sweep = run_threshold_sweep(synthetic_dataset, rounds=4)
        assert (np.diff(sweep.far) >= -1e-9).all()
        assert (np.diff(sweep.frr) <= 1e-9).all()

    def test_eer_reasonable(self, synthetic_dataset):
        sweep = run_threshold_sweep(synthetic_dataset, rounds=4)
        assert 0.0 <= sweep.eer < 0.2


class TestAttempts:
    def test_voting_improves_over_single(self, synthetic_dataset):
        result = run_attempts(
            synthetic_dataset, attempts=(1, 5), rounds=5, trials_per_round=10
        )
        assert result.tar_own_mean[1] >= result.tar_own_mean[0] - 0.02
        assert result.trr_mean[1] >= result.trr_mean[0] - 0.05

    def test_variance_shrinks_with_attempts(self, synthetic_dataset):
        result = run_attempts(
            synthetic_dataset, attempts=(1, 7), rounds=5, trials_per_round=10
        )
        assert result.tar_own_std[1] <= result.tar_own_std[0] + 0.02


class TestTrainingSize:
    def test_accuracy_grows_with_training_data(self, synthetic_dataset):
        result = run_training_size(
            synthetic_dataset, user="u0", sizes=(6, 20), rounds=8
        )
        # Fig. 15's effect: more data, higher and steadier rates.
        assert result.trr_mean[1] >= result.trr_mean[0] - 0.05
        assert result.tar_std[1] <= result.tar_std[0] + 0.05


class TestForgeryDelay:
    @pytest.fixture(scope="class")
    def signal_dataset(self):
        """Genuine clips with real correlated signals for delay shifting."""
        rng = np.random.default_rng(3)
        instances = []
        for i in range(12):
            t = np.full(150, 180.0)
            a = int(rng.integers(35, 65))
            b = a + int(rng.integers(45, 60))  # well-separated challenges
            t[a:] -= 50.0
            t[b:] += 40.0
            r = 120.0 + 0.3 * np.concatenate([np.full(4, t[0]), t[:-4]])
            r = r + rng.normal(0, 0.3, 150)
            fv = FeatureVector(1.0, 1.0, float(rng.uniform(0.9, 1.0)), float(rng.uniform(0.02, 0.15)))
            instances.append(_instance("u0", GENUINE, (fv.z1, fv.z2, fv.z3, fv.z4), seed=i, signals=(t, r)))
        return FeatureDataset(instances)

    def test_rejection_grows_with_delay(self, signal_dataset):
        result = run_forgery_delay(
            signal_dataset,
            delays_s=(0.0, 2.0),
            rounds=2,
            train_size=8,
            max_clips_per_user=12,
        )
        assert result.rejection_rate[1] > result.rejection_rate[0]

    def test_zero_delay_mostly_accepted(self, signal_dataset):
        result = run_forgery_delay(
            signal_dataset,
            delays_s=(0.0,),
            rounds=2,
            train_size=8,
            max_clips_per_user=12,
        )
        assert result.rejection_rate[0] < 0.5
