"""Figure generators: registry, output format, file writing."""

import numpy as np
import pytest

from repro.core.features import FeatureVector
from repro.experiments.dataset import ATTACK, GENUINE, ClipInstance, FeatureDataset
from repro.experiments.figures import (
    FIGURES,
    figure_11_overall,
    figure_12_threshold,
    figure_14_attempts,
    figure_15_training_size,
    figure_17_forgery_delay,
    generate_all,
)


@pytest.fixture(scope="module")
def small_dataset():
    """Separable synthetic feature dataset with real-ish signals."""
    rng = np.random.default_rng(1)
    instances = []
    for user in ("u0", "u1"):
        for i in range(30):
            t = np.full(150, 180.0)
            a = int(rng.integers(35, 60))
            b = a + int(rng.integers(45, 60))
            t[a:] -= 50.0
            t[b:] += 40.0
            r = 120.0 + 0.3 * np.concatenate([np.full(4, t[0]), t[:-4]])
            z = FeatureVector(
                1.0,
                float(rng.choice([1.0, 1.0, 0.667])),
                float(rng.uniform(0.88, 1.0)),
                float(rng.uniform(0.02, 0.2)),
            )
            instances.append(
                ClipInstance(user, GENUINE, i, z, t, r + rng.normal(0, 0.3, 150))
            )
        for i in range(30):
            z = FeatureVector(
                float(rng.uniform(0, 0.6)),
                float(rng.uniform(0, 0.7)),
                float(rng.uniform(-0.9, 0.3)),
                float(rng.uniform(0.5, 1.4)),
            )
            instances.append(
                ClipInstance(user, ATTACK, i, z, np.zeros(150), np.zeros(150))
            )
    return FeatureDataset(instances)


class TestRegistry:
    def test_all_paper_figures_registered(self):
        assert {"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "ambient"} <= set(
            FIGURES
        )

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            generate_all(tmp_path, only=["fig99"])


class TestGenerators:
    def test_fig11_lines(self, small_dataset):
        lines = figure_11_overall(small_dataset)
        assert lines[0].startswith("Fig. 11")
        assert any("AVERAGE" in line for line in lines)
        assert any("u0" in line for line in lines)

    def test_fig12_reports_eer(self, small_dataset):
        lines = figure_12_threshold(small_dataset)
        assert any("EER" in line for line in lines)

    def test_fig14_rows_per_attempt(self, small_dataset):
        lines = figure_14_attempts(small_dataset)
        data_rows = [l for l in lines[2:]]
        assert len(data_rows) == 7  # D = 1..7

    def test_fig15_rows_per_size(self, small_dataset):
        lines = figure_15_training_size(small_dataset)
        assert len(lines) == 2 + 5  # header + sizes (4,8,12,16,20)

    def test_fig17_monotone_story(self, small_dataset):
        lines = figure_17_forgery_delay(small_dataset)
        values = [float(line.split()[-1]) for line in lines[2:]]
        assert values[-1] >= values[0]
