"""PerfRecorder/PerfReport: stage timing, counters, printable rows."""

import pytest

from repro.engine import PerfRecorder
from repro.obs.clock import ManualClock


def _snapshot(recorder, jobs=1, hits=0, misses=0):
    return recorder.snapshot(jobs=jobs, cache_hits=hits, cache_misses=misses)


class TestRecorder:
    def test_stage_accumulates_calls_and_tasks(self):
        rec = PerfRecorder()
        for _ in range(3):
            with rec.stage("rounds", tasks=5):
                pass
        (stage,) = _snapshot(rec).stages
        assert stage.name == "rounds"
        assert stage.calls == 3
        assert stage.tasks == 15
        assert stage.wall_s >= 0.0

    def test_stage_order_is_first_use_order(self):
        rec = PerfRecorder()
        for name in ("simulate", "features", "rounds", "features"):
            with rec.stage(name):
                pass
        assert [s.name for s in _snapshot(rec).stages] == [
            "simulate",
            "features",
            "rounds",
        ]

    def test_add_tasks_counts_against_existing_stage(self):
        rec = PerfRecorder()
        with rec.stage("features", tasks=2):
            pass
        rec.add_tasks("features", 3)
        report = _snapshot(rec)
        assert report.stages[0].tasks == 5
        assert report.tasks_completed == 5

    def test_reset_zeroes_counters(self):
        rec = PerfRecorder()
        with rec.stage("x", tasks=9):
            pass
        rec.reset()
        report = _snapshot(rec)
        assert report.stages == ()
        assert report.tasks_completed == 0

    def test_stage_records_even_when_body_raises(self):
        rec = PerfRecorder()
        try:
            with rec.stage("boom", tasks=1):
                raise RuntimeError("task failed")
        except RuntimeError:
            pass
        assert _snapshot(rec).stages[0].calls == 1


class TestReport:
    def test_cache_rates(self):
        report = _snapshot(PerfRecorder(), jobs=4, hits=3, misses=1)
        assert report.jobs == 4
        assert report.cache_lookups == 4
        assert report.cache_hit_rate == pytest.approx(0.75)

    def test_hit_rate_defined_without_lookups(self):
        assert _snapshot(PerfRecorder()).cache_hit_rate == pytest.approx(0.0)

    def test_str_mentions_stages_and_cache(self):
        rec = PerfRecorder()
        with rec.stage("features", tasks=10):
            pass
        text = str(_snapshot(rec, jobs=2, hits=7, misses=3))
        assert "PerfReport (jobs=2)" in text
        assert "features" in text
        assert "7 hits / 3 misses" in text
        assert "70.0% hit rate" in text


class TestManualClockTiming:
    def test_stage_wall_time_is_exact_under_manual_clock(self):
        clock = ManualClock()
        rec = PerfRecorder(clock=clock)
        with rec.stage("features", tasks=4):
            clock.advance(2.0)
        (stage,) = _snapshot(rec).stages
        assert stage.wall_s == pytest.approx(2.0)
        assert stage.tasks_per_sec == pytest.approx(2.0)

    def test_zero_wall_report_has_zero_throughput(self):
        # Frozen clock: wall_s == 0.0 must not divide by zero.
        report = _snapshot(PerfRecorder(clock=ManualClock()))
        assert report.wall_s == pytest.approx(0.0)
        assert report.tasks_per_sec == pytest.approx(0.0)
        assert report.cache_hit_rate == pytest.approx(0.0)

    def test_zero_wall_stage_reports_inf_not_crash(self):
        clock = ManualClock()
        rec = PerfRecorder(clock=clock)
        with rec.stage("instant", tasks=3):
            pass  # no clock advance: zero-duration stage
        (stage,) = _snapshot(rec).stages
        assert stage.wall_s == pytest.approx(0.0)
        assert stage.tasks_per_sec == float("inf")
        assert any("inf" in line for line in _snapshot(rec).lines())

    def test_report_wall_spans_recorder_lifetime(self):
        clock = ManualClock(start=100.0)
        rec = PerfRecorder(clock=clock)
        clock.advance(3.0)
        with rec.stage("x", tasks=6):
            clock.advance(1.0)
        report = _snapshot(rec)
        assert report.wall_s == pytest.approx(4.0)
        assert report.tasks_per_sec == pytest.approx(1.5)

    def test_reset_rereads_the_clock(self):
        clock = ManualClock()
        rec = PerfRecorder(clock=clock)
        clock.advance(5.0)
        rec.reset()
        clock.advance(1.0)
        assert _snapshot(rec).wall_s == pytest.approx(1.0)


class TestCounters:
    def test_count_accumulates_and_snapshots(self):
        rec = PerfRecorder()
        rec.count("clips_total", 3)
        rec.count("clips_total")
        rec.count("clips_inconclusive", 2)
        report = _snapshot(rec)
        assert report.counters == {"clips_total": 4, "clips_inconclusive": 2}

    def test_counters_render_in_lines(self):
        rec = PerfRecorder()
        rec.count("fault_sessions", 8)
        assert any("fault_sessions: 8" in line for line in _snapshot(rec).lines())

    def test_snapshot_counters_are_a_copy(self):
        rec = PerfRecorder()
        rec.count("x")
        report = _snapshot(rec)
        rec.count("x")
        assert report.counters["x"] == 1

    def test_reset_clears_counters(self):
        rec = PerfRecorder()
        rec.count("x", 5)
        rec.reset()
        assert _snapshot(rec).counters == {}

    def test_engine_count_passthrough(self):
        from repro.engine import ExecutionEngine

        with ExecutionEngine(jobs=1) as engine:
            engine.count("clips_total", 2)
            report = engine.perf_report()
        assert report.counters["clips_total"] == 2

    def test_engine_reset_perf_zeroes_counters(self):
        from repro.engine import ExecutionEngine

        with ExecutionEngine(jobs=1) as engine:
            engine.count("clips_total", 2)
            engine.reset_perf()
            report = engine.perf_report()
        assert report.counters == {}
        assert report.cache_hits == 0
