"""FeatureCache: content-addressed keys, hit/miss accounting, eviction."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.features import FeatureVector
from repro.engine import FeatureCache, clip_signal_hash, config_fingerprint


def _signals(seed=0, n=150):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 255, n), rng.uniform(0, 255, n)


class TestKeys:
    def test_same_inputs_same_key(self):
        t, r = _signals()
        config = DetectorConfig()
        assert FeatureCache.key_for(t, r, config) == FeatureCache.key_for(
            t.copy(), r.copy(), config
        )

    def test_signal_change_changes_key(self):
        t, r = _signals()
        assert clip_signal_hash(t, r) != clip_signal_hash(t, r + 1e-9)

    def test_swapping_signals_changes_key(self):
        t, r = _signals()
        assert clip_signal_hash(t, r) != clip_signal_hash(r, t)

    def test_shape_is_part_of_the_hash(self):
        flat = np.zeros(4)
        assert clip_signal_hash(flat, flat) != clip_signal_hash(
            flat.reshape(2, 2), flat.reshape(2, 2)
        )

    def test_dtype_and_contiguity_do_not_matter(self):
        t, r = _signals()
        strided = np.stack([t, t])[::2][0]  # non-trivially strided view
        int_valued = np.arange(150, dtype=np.int64)
        assert clip_signal_hash(t, r) == clip_signal_hash(strided, r)
        assert clip_signal_hash(int_valued, r) == clip_signal_hash(
            int_valued.astype(np.float64), r
        )

    def test_any_config_field_changes_fingerprint(self):
        base = DetectorConfig()
        assert config_fingerprint(base) == config_fingerprint(DetectorConfig())
        assert config_fingerprint(base) != config_fingerprint(
            base.with_overrides(lof_threshold=2.5)
        )


class TestAccounting:
    def test_miss_then_hit(self):
        cache = FeatureCache()
        t, r = _signals()
        key = cache.key_for(t, r, DetectorConfig())
        assert cache.get(key) is None
        cache.put(key, FeatureVector(1.0, 1.0, 0.9, 0.1))
        assert cache.get(key) == FeatureVector(1.0, 1.0, 0.9, 0.1)
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_clear_resets_everything(self):
        cache = FeatureCache()
        cache.put("k", FeatureVector(0, 0, 0, 0))
        cache.get("k")
        cache.get("absent")
        cache.clear()
        assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)


class TestEviction:
    def test_fifo_eviction_keeps_newest(self):
        cache = FeatureCache(max_entries=2)
        for i in range(3):
            cache.put(f"k{i}", FeatureVector(i, 0, 0, 0))
        assert len(cache) == 2
        assert cache.get("k0") is None  # oldest evicted
        assert cache.get("k1") is not None
        assert cache.get("k2") is not None

    def test_overwriting_existing_key_does_not_evict(self):
        cache = FeatureCache(max_entries=2)
        cache.put("a", FeatureVector(0, 0, 0, 0))
        cache.put("b", FeatureVector(1, 0, 0, 0))
        cache.put("a", FeatureVector(2, 0, 0, 0))
        assert len(cache) == 2
        assert cache.get("a") == FeatureVector(2, 0, 0, 0)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            FeatureCache(max_entries=0)
