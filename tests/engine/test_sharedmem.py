"""Shared-memory transport tests: pack layout, worker-side extraction,
pool==serial identity at jobs in {1, 2, 4}, and the zero-work edges."""

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import LivenessDetector, verify_clips
from repro.core.features import extract_features_batch
from repro.engine import ExecutionEngine
from repro.engine.engine import _chunk_bounds
from repro.engine.sharedmem import SignalPack, extract_pack_chunk
from repro.obs import Instrumentation, render_json


def _make_pairs(count, seed=7):
    rng = np.random.default_rng(seed)
    pairs = []
    for i in range(count):
        length = int(rng.integers(40, 160))
        t_lum = rng.uniform(80.0, 140.0, length)
        r_lum = rng.uniform(0.2, 0.9, length)
        pairs.append((t_lum, r_lum))
    return pairs


class TestSignalPack:
    def test_layout_round_trips_signal_bytes(self):
        pairs = _make_pairs(3)
        with SignalPack(pairs) as pack:
            handle = pack.handle
            assert handle.pair_count == 3
            assert handle.lengths.size == 6
            assert handle.total == int(handle.lengths.sum())
            shm = shared_memory.SharedMemory(name=handle.name)
            try:
                flat = np.ndarray((handle.total,), dtype=np.float64, buffer=shm.buf)
                for i, (t_lum, r_lum) in enumerate(pairs):
                    t_off = int(handle.offsets[2 * i])
                    r_off = int(handle.offsets[2 * i + 1])
                    assert np.array_equal(flat[t_off : t_off + t_lum.size], t_lum)
                    assert np.array_equal(flat[r_off : r_off + r_lum.size], r_lum)
            finally:
                flat = None
                shm.close()

    def test_refuses_empty_segment(self):
        with pytest.raises(ValueError):
            SignalPack([])
        with pytest.raises(ValueError):
            SignalPack([(np.array([]), np.array([]))])

    def test_segment_is_unlinked_on_exit(self):
        with SignalPack(_make_pairs(1)) as pack:
            name = pack.handle.name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestExtractPackChunk:
    def test_matches_in_process_batch_core(self):
        pairs = _make_pairs(5)
        config = DetectorConfig()
        want = [ex.features for ex in extract_features_batch(pairs, config)]
        with SignalPack(pairs) as pack:
            got = extract_pack_chunk((pack.handle, 0, len(pairs), config))
        assert got == want

    def test_chunks_partition_the_batch(self):
        pairs = _make_pairs(5)
        config = DetectorConfig()
        want = [ex.features for ex in extract_features_batch(pairs, config)]
        with SignalPack(pairs) as pack:
            got = []
            for lo, hi in _chunk_bounds(len(pairs), 3):
                got.extend(extract_pack_chunk((pack.handle, lo, hi, config)))
        assert got == want


class TestPoolSerialIdentity:
    def test_features_identical_at_jobs_1_2_4(self):
        pairs = _make_pairs(6)
        config = DetectorConfig()
        serial = [ex.features for ex in extract_features_batch(pairs, config)]
        for jobs in (1, 2, 4):
            with ExecutionEngine(jobs=jobs) as engine:
                assert engine.extract_features_batch(pairs, config) == serial, jobs

    def test_verdicts_and_metrics_identical_at_jobs_1_2_4(self):
        config = DetectorConfig()
        bank_pairs = _make_pairs(8, seed=3)
        probe_pairs = _make_pairs(5, seed=4)

        def _run(jobs):
            instr = Instrumentation.enabled()
            detector = LivenessDetector(config, instrumentation=instr)
            detector.fit_from_clips(bank_pairs)
            with ExecutionEngine(jobs=jobs) as engine:
                results = verify_clips(probe_pairs, detector, engine=engine)
            return results, render_json(instr.snapshot())

        base_results, base_metrics = _run(1)
        for jobs in (2, 4):
            results, metrics = _run(jobs)
            assert metrics == base_metrics, jobs
            for got, want in zip(results, base_results):
                assert got.features == want.features
                assert got.lof_score == want.lof_score
                assert got.accepted == want.accepted


class TestZeroWorkEdges:
    def test_empty_map_batches_emits_nothing(self):
        with ExecutionEngine(jobs=4) as engine:
            assert engine.map_batches(len, [], stage="probe") == []
            snap = engine.instrumentation.snapshot()
            assert snap.counter_value("engine_stage_calls_total", stage="probe") == 0
            assert not engine.perf_report().stages

    def test_empty_extract_batch_emits_nothing(self):
        with ExecutionEngine(jobs=4) as engine:
            assert engine.extract_features_batch([], DetectorConfig()) == []
            assert not engine.perf_report().stages

    def test_fewer_clips_than_jobs_never_yields_empty_chunks(self):
        for count in (1, 2, 3):
            for jobs in (4, 8):
                bounds = _chunk_bounds(count, min(jobs, count))
                assert all(hi > lo for lo, hi in bounds)
                assert bounds[0][0] == 0 and bounds[-1][1] == count

    def test_fewer_clips_than_jobs_extracts_correctly(self):
        pairs = _make_pairs(2)
        config = DetectorConfig()
        serial = [ex.features for ex in extract_features_batch(pairs, config)]
        with ExecutionEngine(jobs=4) as engine:
            assert engine.extract_features_batch(pairs, config) == serial

    def test_zero_sample_pairs_stay_in_process(self):
        # All-empty signals would make an empty shared segment; the engine
        # must route them through the in-process batch core instead.
        pairs = [(np.array([]), np.array([])), (np.array([]), np.array([]))]
        config = DetectorConfig()
        serial = [ex.features for ex in extract_features_batch(pairs, config)]
        with ExecutionEngine(jobs=4) as engine:
            assert engine.extract_features_batch(pairs, config) == serial
