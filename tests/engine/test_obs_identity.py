"""Pool==serial metric identity through ``ExecutionEngine.map``.

Workers build their own enabled handles and ship snapshots home; the
parent folds them in submission order.  The rendered metrics must be
byte-identical between ``jobs=1`` and ``jobs=2`` — this is the repo's
determinism contract extended to observability.
"""

from repro.engine import ExecutionEngine
from repro.obs import Instrumentation, render_json
from repro.obs.metrics import MetricsRegistry


def _counting_task(payload: tuple[int, int]) -> dict:
    """Module-level so the process pool can pickle it."""
    seed, clips = payload
    instr = Instrumentation.enabled()
    with instr.span("session", stage="simulate", seed=seed):
        instr.count("clips_total", clips)
        instr.count("verdicts", verdict="accept" if seed % 2 == 0 else "reject")
        instr.observe("score", (seed % 10) / 10.0, buckets=(0.25, 0.5, 1.0))
    return {"snapshot": instr.snapshot(), "spans": instr.drain_spans()}


def _run(jobs: int) -> str:
    payloads = [(seed, seed + 1) for seed in range(6)]
    registry = MetricsRegistry()
    engine = ExecutionEngine(jobs=jobs)
    for row in engine.map(_counting_task, payloads, stage="sessions"):
        registry.merge_snapshot(row["snapshot"])
    return render_json(registry.snapshot())


class TestPoolSerialIdentity:
    def test_rendered_metrics_identical_across_jobs(self):
        assert _run(jobs=1) == _run(jobs=2)

    def test_merged_totals_are_correct(self):
        registry = MetricsRegistry()
        engine = ExecutionEngine(jobs=2)
        for row in engine.map(_counting_task, [(s, s + 1) for s in range(6)]):
            registry.merge_snapshot(row["snapshot"])
        snap = registry.snapshot()
        assert snap.counter_value("clips_total") == sum(range(1, 7))
        assert snap.counter_value("verdicts", verdict="accept") == 3
        assert snap.counter_value("verdicts", verdict="reject") == 3
        assert snap.get("score", kind="histogram").count == 6


class TestEngineHandle:
    def test_engine_instrumentation_shares_recorder_registry(self):
        engine = ExecutionEngine(jobs=1)
        engine.map(len, [[1], [1, 2]], stage="probe")
        snap = engine.instrumentation.snapshot()
        assert snap.counter_value("engine_stage_calls_total", stage="probe") == 1
        assert engine.perf_report().stages[0].name == "probe"

    def test_merge_snapshot_feeds_perf_counters(self):
        engine = ExecutionEngine(jobs=1)
        worker = MetricsRegistry()
        worker.counter("clips_total").inc(7)
        engine.merge_snapshot(worker.snapshot())
        assert engine.perf_report().counters["clips_total"] == 7

    def test_external_tracer_receives_engine_spans(self):
        from repro.obs.tracing import InMemoryTraceSink

        sink = InMemoryTraceSink()
        instr = Instrumentation.enabled(sink=sink)
        engine = ExecutionEngine(jobs=1, instrumentation=instr)
        engine.map(len, [[1]], stage="probe")
        assert [r["name"] for r in sink.records] == ["engine.probe"]
        assert sink.records[0]["stage"] == "engine"
