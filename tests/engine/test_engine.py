"""ExecutionEngine: pool-vs-serial equivalence, caching, determinism.

The engine's core promise is that results are a pure function of the
task list — not of the job count, the scheduler, or whether an engine
is used at all.  These tests pin that promise on synthetic datasets
whose stored features are genuinely extracted from their stored signals
(so the engine's recompute-through-the-cache path must agree bit for
bit with the dataset's stored features).
"""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.features import extract_features
from repro.engine import ExecutionEngine, FeatureCache, task_rng
from repro.experiments.dataset import (
    ATTACK,
    GENUINE,
    ClipInstance,
    FeatureDataset,
    build_dataset,
)
from repro.experiments.profiles import Environment, make_population
from repro.experiments.runner import run_overall, run_threshold_sweep


def _square(x: int) -> int:
    """Module-level task fn (must be picklable for the pool)."""
    return x * x


def _make_clip(user, role, index, config, rng):
    """A clip whose stored features ARE the extraction of its signals."""
    t = np.full(150, 180.0)
    a = int(rng.integers(30, 60))
    b = a + int(rng.integers(45, 60))
    t[a:] -= 50.0
    t[b:] += 40.0
    if role == GENUINE:
        delayed = np.concatenate([np.full(4, t[0]), t[:-4]])
        r = 120.0 + 0.3 * delayed + rng.normal(0, 0.3, 150)
    else:
        r = 120.0 + rng.normal(0, 2.0, 150)
    features = extract_features(t, r, config).features
    return ClipInstance(user, role, index, features, t, r)


@pytest.fixture(scope="module")
def small_dataset():
    rng = np.random.default_rng(0)
    config = DetectorConfig()
    instances = []
    for user in ("u0", "u1", "u2"):
        instances += [_make_clip(user, GENUINE, i, config, rng) for i in range(26)]
        instances += [_make_clip(user, ATTACK, i, config, rng) for i in range(12)]
    return FeatureDataset(instances)


class TestTaskRng:
    def test_same_key_same_stream(self):
        assert task_rng(7, 3, 1).integers(0, 1000, 8).tolist() == task_rng(
            7, 3, 1
        ).integers(0, 1000, 8).tolist()

    def test_different_coordinates_different_streams(self):
        a = task_rng(7, 3, 1).integers(0, 1000, 8)
        b = task_rng(7, 3, 2).integers(0, 1000, 8)
        c = task_rng(7, 4, 1).integers(0, 1000, 8)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestMap:
    def test_serial_map_preserves_order(self):
        with ExecutionEngine(jobs=1) as engine:
            assert engine.map(_square, range(10)) == [i * i for i in range(10)]

    def test_parallel_map_matches_serial(self):
        tasks = list(range(40))
        with ExecutionEngine(jobs=1) as serial, ExecutionEngine(jobs=3) as parallel:
            assert parallel.map(_square, tasks) == serial.map(_square, tasks)

    def test_map_records_stage(self):
        with ExecutionEngine(jobs=1) as engine:
            engine.map(_square, range(5), stage="squares")
            report = engine.perf_report()
        assert [s.name for s in report.stages] == ["squares"]
        assert report.stages[0].tasks == 5

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            ExecutionEngine(jobs=0)


class TestCachedExtraction:
    def test_cached_matches_direct_extraction(self, small_dataset):
        config = DetectorConfig()
        clip = small_dataset.instances[0]
        with ExecutionEngine(jobs=1) as engine:
            via_cache = engine.extract_features_cached(
                clip.transmitted_luminance, clip.received_luminance, config
            )
        direct = extract_features(
            clip.transmitted_luminance, clip.received_luminance, config
        ).features
        assert via_cache == direct

    def test_second_batch_is_all_hits(self, small_dataset):
        config = DetectorConfig()
        pairs = [
            (c.transmitted_luminance, c.received_luminance)
            for c in small_dataset.instances[:8]
        ]
        with ExecutionEngine(jobs=1) as engine:
            first = engine.extract_features_batch(pairs, config)
            assert (engine.cache.hits, engine.cache.misses) == (0, 8)
            second = engine.extract_features_batch(pairs, config)
            assert engine.cache.hits == 8
            assert engine.cache.misses == 8
        assert first == second

    def test_duplicates_within_a_batch_extract_once(self, small_dataset):
        config = DetectorConfig()
        clip = small_dataset.instances[0]
        pair = (clip.transmitted_luminance, clip.received_luminance)
        with ExecutionEngine(jobs=1) as engine:
            out = engine.extract_features_batch([pair, pair, pair], config)
            assert engine.cache.misses == 1
            assert engine.cache.hits == 2
        assert out[0] == out[1] == out[2]

    def test_config_change_misses(self, small_dataset):
        clip = small_dataset.instances[0]
        pair = (clip.transmitted_luminance, clip.received_luminance)
        with ExecutionEngine(jobs=1) as engine:
            engine.extract_features_batch([pair], DetectorConfig())
            engine.extract_features_batch(
                [pair], DetectorConfig().with_overrides(lof_threshold=2.0)
            )
            assert engine.cache.misses == 2
            assert engine.cache.hits == 0

    def test_shared_cache_across_engines(self, small_dataset):
        config = DetectorConfig()
        clip = small_dataset.instances[0]
        pair = (clip.transmitted_luminance, clip.received_luminance)
        cache = FeatureCache()
        with ExecutionEngine(jobs=1, cache=cache) as first:
            first.extract_features_batch([pair], config)
        with ExecutionEngine(jobs=1, cache=cache) as second:
            second.extract_features_batch([pair], config)
        assert cache.hits == 1
        assert cache.misses == 1


class TestRunnerEquivalence:
    """jobs=N == jobs=1 == no engine at all, bit for bit."""

    def test_run_overall(self, small_dataset):
        plain = run_overall(small_dataset, rounds=4, train_size=10)
        with ExecutionEngine(jobs=1) as serial:
            one = run_overall(small_dataset, rounds=4, train_size=10, engine=serial)
        with ExecutionEngine(jobs=3) as parallel:
            many = run_overall(small_dataset, rounds=4, train_size=10, engine=parallel)
        assert plain == one == many

    def test_run_threshold_sweep(self, small_dataset):
        plain = run_threshold_sweep(small_dataset, rounds=3, train_size=10)
        with ExecutionEngine(jobs=3) as parallel:
            many = run_threshold_sweep(
                small_dataset, rounds=3, train_size=10, engine=parallel
            )
        assert np.array_equal(plain.far, many.far)
        assert np.array_equal(plain.frr, many.frr)
        assert plain.eer == many.eer
        assert plain.eer_threshold == many.eer_threshold

    def test_rerun_is_reproducible_and_hits_cache(self, small_dataset):
        with ExecutionEngine(jobs=2) as engine:
            first = run_overall(small_dataset, rounds=3, train_size=10, engine=engine)
            misses_after_first = engine.cache.misses
            second = run_overall(small_dataset, rounds=3, train_size=10, engine=engine)
            assert first == second
            assert engine.cache.misses == misses_after_first  # no new extractions
            assert engine.cache.hits > 0


class TestParallelDatasetBuild:
    @pytest.mark.slow
    def test_parallel_simulation_is_bit_identical(self):
        population = make_population(count=2)
        env = Environment(frame_size=(48, 48), verifier_frame_size=(32, 32))
        config = DetectorConfig(clip_duration_s=6.0)
        kwargs = dict(
            population=population,
            clips_per_role=2,
            roles=(GENUINE,),
            env=env,
            config=config,
            use_cache=False,
        )
        serial = build_dataset(**kwargs)
        with ExecutionEngine(jobs=2) as engine:
            parallel = build_dataset(engine=engine, **kwargs)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial.instances, parallel.instances):
            assert (a.user, a.role, a.seed) == (b.user, b.role, b.seed)
            assert a.features == b.features
            assert np.array_equal(a.transmitted_luminance, b.transmitted_luminance)
            assert np.array_equal(a.received_luminance, b.received_luminance)
