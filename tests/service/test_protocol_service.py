"""Challenge-binding protocol riding the multi-tenant service.

The protocol must compose with every existing service guarantee: the
concurrent run stays byte-identical to its serial replay, replayed and
stale sessions surface as their own condemned statuses (never as
accepted ``live``), and the SLO report breaks the new statuses out per
tenant.
"""

from repro.obs import Instrumentation
from repro.protocol import ProtocolConfig
from repro.service import (
    ServerConfig,
    VerificationServer,
    VirtualScheduler,
    WorkloadConfig,
    build_scripts,
    build_slo_report,
    make_tenant_bank_provider,
    run_workload,
)

from .conftest import WALL_GUARD_S

#: Protocol-heavy mix: every session runs the handshake; replay and
#: stale roles appear often enough to assert on.  No chaos — statuses
#: must be attributable to the binding layer, not channel damage.
MIX = dict(
    sessions=24,
    tenants=3,
    arrival_rate_hz=4.0,
    attack_fraction=0.0,
    chaos_fraction=0.0,
    abandon_fraction=0.0,
    burst_fraction=0.0,
    protocol_fraction=1.0,
    protocol_replay_fraction=0.3,
    protocol_stale_fraction=0.2,
    seed=23,
)

SERVER = dict(max_sessions=64, admission_queue_depth=16)


def run_mix(serial: bool, **workload_overrides):
    workload = WorkloadConfig(**{**MIX, **workload_overrides})
    scheduler = VirtualScheduler()
    instr = Instrumentation.enabled(clock=scheduler.clock)
    server = VerificationServer(
        scheduler,
        make_tenant_bank_provider(workload),
        ServerConfig(protocol=ProtocolConfig(), **SERVER),
        instrumentation=instr,
    )
    result = run_workload(
        scheduler, server, workload, serial=serial, wall_guard_s=WALL_GUARD_S
    )
    return result, instr.snapshot(), server


class TestProtocolIdentity:
    def test_concurrent_equals_serial_with_protocol_sessions(self):
        concurrent, concurrent_snap, server = run_mix(serial=False)
        serial, serial_snap, _ = run_mix(serial=True)
        assert server.peak_active > 1
        assert concurrent.rejected == serial.rejected == 0
        assert concurrent.outcomes == serial.outcomes
        assert concurrent_snap == serial_snap

    def test_zero_protocol_fraction_is_the_legacy_stream(self):
        """protocol_fraction=0 must not consume any extra RNG draws: the
        scripts are byte-identical to a pre-protocol workload."""
        base = {**MIX, "protocol_fraction": 0.0,
                "protocol_replay_fraction": 0.0, "protocol_stale_fraction": 0.0}
        scripts = build_scripts(WorkloadConfig(**base))
        assert all(s.protocol is None for s in scripts)


class TestProtocolVerdicts:
    def test_replay_and_stale_surface_as_their_own_statuses(self):
        result, _, _ = run_mix(serial=False)
        by_id = {o.session_id: o for o in result.outcomes}
        scripts = build_scripts(WorkloadConfig(**MIX))
        roles = {s.session_id: s.protocol for s in scripts}
        statuses = {o.status.value for o in result.outcomes}
        assert "replay" in statuses
        assert "stale" in statuses
        for sid, role in roles.items():
            status = by_id[sid].status.value
            if role == "replay":
                # The headline acceptance: a replayed recording is never
                # accepted as live — and it is *attributed*, not just
                # lumped in with ordinary fakes.
                assert status in {"replay", "stale", "attacker"}, (
                    f"{sid}: replayed session accepted as {status}"
                )
            elif role == "stale":
                assert status in {"stale", "replay", "attacker"}, (
                    f"{sid}: stale relay accepted as {status}"
                )
            elif role == "genuine":
                assert status not in {"replay", "stale", "attacker"}, (
                    f"{sid}: genuine protocol session condemned as {status}"
                )

    def test_protocol_disabled_server_rejects_protocol_sessions(self):
        workload = WorkloadConfig(**MIX)
        scheduler = VirtualScheduler()
        server = VerificationServer(
            scheduler,
            make_tenant_bank_provider(workload),
            ServerConfig(**SERVER),  # no ProtocolConfig
        )
        result = run_workload(
            scheduler, server, workload, wall_guard_s=WALL_GUARD_S
        )
        assert result.rejected == MIX["sessions"]


class TestProtocolSLO:
    def test_report_breaks_out_protocol_and_tenants(self):
        result, snapshot, _ = run_mix(serial=False)
        report = build_slo_report(snapshot)
        assert report.protocol_sessions > 0
        assert sum(report.protocol_bindings.values()) > 0
        assert "replay" in report.protocol_bindings
        # Every tenant that finished a session has a status breakdown,
        # and the per-tenant counts add back up to the totals.
        assert report.tenant_status
        total = sum(
            count
            for statuses in report.tenant_status.values()
            for count in statuses.values()
        )
        assert total == len(result.outcomes)
        rendered = "\n".join(report.lines())
        assert "protocol:" in rendered
        assert "tenant " in rendered
