"""SLO reporting: snapshot -> operator-facing numbers."""

import pytest

from repro.obs import Instrumentation, MetricsRegistry
from repro.service import (
    SERVICE_LATENCY_BUCKETS_S,
    SLOReport,
    build_slo_report,
)


def make_snapshot():
    """A hand-built service snapshot with known totals."""
    instr = Instrumentation.enabled()
    for _ in range(8):
        instr.count("service_admissions_total", decision="admitted", reason="ok")
    for _ in range(2):
        instr.count(
            "service_admissions_total", decision="rejected", reason="queue_full"
        )
    for status, count in (("live", 5), ("attacker", 2), ("inconclusive", 1)):
        instr.count("service_sessions_total", count, status=status)
    for reason, count in (("completed", 7), ("stall", 1)):
        instr.count("service_session_end_total", count, reason=reason)
    instr.count("service_frames_processed_total", 900)
    instr.count("service_frames_dropped_total", 100)
    for latency in (12.0, 14.0, 16.0, 18.0, 20.0, 30.0, 40.0, 55.0):
        instr.observe(
            "service_verdict_latency_s", latency, buckets=SERVICE_LATENCY_BUCKETS_S
        )
    instr.count("service_tenant_cache_total", 6, event="hit")
    instr.count("service_tenant_cache_total", 2, event="miss")
    instr.count("service_tenant_cache_total", 1, event="eviction")
    instr.count("service_task_failures_total", stage="tenant_fit")
    return instr.snapshot()


class TestBuildReport:
    def test_totals_and_rates(self):
        report = build_slo_report(make_snapshot(), peak_active=6, peak_queued=3)
        assert report.admitted == 8
        assert report.rejected == 2
        assert report.submitted == 10
        assert report.admission_rate == pytest.approx(0.8)
        assert report.sessions_finished == 8
        assert report.status_counts == {"live": 5, "attacker": 2, "inconclusive": 1}
        assert report.end_reasons == {"completed": 7, "stall": 1}
        assert report.frames_processed == 900
        assert report.frames_dropped == 100
        assert report.drop_rate == pytest.approx(0.1)
        assert report.tenant_cache == {"hit": 6, "miss": 2, "eviction": 1}
        assert report.task_failures == 1
        assert report.peak_active == 6
        assert report.peak_queued == 3

    def test_latency_quantiles_come_from_the_histogram(self):
        report = build_slo_report(make_snapshot())
        # Bucket-interpolated: p50 inside (15, 20], p99 inside (45, 60].
        assert 15.0 < report.p50_latency_s <= 20.0
        assert 45.0 < report.p99_latency_s <= 60.0
        assert report.mean_latency_s == pytest.approx(
            sum((12.0, 14.0, 16.0, 18.0, 20.0, 30.0, 40.0, 55.0)) / 8
        )

    def test_empty_snapshot_yields_a_zero_report(self):
        report = build_slo_report(MetricsRegistry().snapshot())
        assert report.submitted == 0
        assert report.admission_rate == 0.0  # reprolint: disable=R004
        assert report.sessions_finished == 0
        assert report.drop_rate == 0.0  # reprolint: disable=R004
        assert report.p50_latency_s == 0.0  # reprolint: disable=R004
        assert report.task_failures == 0

    def test_report_renders_and_round_trips(self):
        report = build_slo_report(make_snapshot(), peak_active=6, peak_queued=3)
        text = str(report)
        assert "admission rate 0.800" in text
        assert "active=6 queued=3" in text
        assert "task failures: 1" in text
        data = report.to_dict()
        assert data["admitted"] == 8
        assert data["submitted"] == 10
        assert data["drop_rate"] == pytest.approx(0.1)
        rebuilt = SLOReport(
            **{
                k: v
                for k, v in data.items()
                if k not in {"submitted", "admission_rate", "drop_rate"}
            }
        )
        assert rebuilt == report
