"""VerificationServer: admission, backpressure, deadlines, failures."""

import numpy as np
import pytest

from repro.core.lof import SmallBankWarning
from repro.core.streaming import CallStatus
from repro.obs import Instrumentation
from repro.service import ServerConfig, VerificationServer, WorkloadConfig
from repro.service.loadgen import make_tenant_bank_provider
from repro.video.frame import Frame

from .conftest import run_guarded, synthetic_bank


def make_server(sched, instr=None, **overrides):
    config = ServerConfig(**overrides)
    return VerificationServer(
        sched, synthetic_bank, config, instrumentation=instr
    )


def gray_pair(height=24, width=24, t=0.0):
    transmitted = Frame(pixels=np.full((height, width, 3), 180.0), timestamp=t)
    received = Frame(pixels=np.zeros((height, width, 3)), timestamp=t)
    return transmitted, received


class TestAdmission:
    def test_rejects_beyond_slots_plus_queue(self, sched):
        instr = Instrumentation.enabled()
        server = make_server(
            sched, instr, max_sessions=2, admission_queue_depth=1,
            frame_timeout_s=5.0,
        )

        async def main():
            admissions = [server.submit("tenant-a") for _ in range(4)]
            await sched.sleep(0.1)  # let the admitted session tasks start
            depth = (server.active_sessions, server.queued_sessions)
            outcomes = []
            for admission in admissions:
                if admission.admitted:
                    admission.handle.finish()
                    outcomes.append(await admission.handle.result())
            return admissions, depth, outcomes

        admissions, depth, outcomes = run_guarded(sched, main())
        assert [a.admitted for a in admissions] == [True, True, True, False]
        assert admissions[3].reason == "queue_full"
        assert admissions[3].handle is None
        assert depth == (2, 1)  # two verifying, one waiting in FIFO
        assert len(outcomes) == 3
        snapshot = instr.snapshot()
        assert (
            snapshot.counter_value(
                "service_admissions_total", decision="admitted", reason="ok"
            )
            == 3
        )
        assert (
            snapshot.counter_value(
                "service_admissions_total", decision="rejected", reason="queue_full"
            )
            == 1
        )

    def test_capacity_recovers_after_sessions_finish(self, sched):
        server = make_server(sched, max_sessions=1, admission_queue_depth=0)

        async def main():
            first = server.submit("tenant-a")
            rejected = server.submit("tenant-a")
            first.handle.finish()
            await first.handle.result()
            second = server.submit("tenant-a")
            second.handle.finish()
            await second.handle.result()
            return rejected.admitted, second.admitted

        assert run_guarded(sched, main()) == (False, True)

    def test_session_ids_are_assigned_when_omitted(self, sched):
        server = make_server(sched)

        async def main():
            a = server.submit("tenant-a")
            b = server.submit("tenant-a", session_id="explicit")
            a.handle.finish()
            b.handle.finish()
            return (await a.handle.result()), (await b.handle.result())

        first, second = run_guarded(sched, main())
        assert first.session_id == "s00001"
        assert second.session_id == "explicit"


class TestSessionLifecycle:
    def test_clean_finish_without_an_attempt_is_inconclusive(self, sched):
        server = make_server(sched)

        async def main():
            admission = server.submit("tenant-a")
            admission.handle.finish()
            return await admission.handle.result()

        outcome = run_guarded(sched, main())
        assert outcome.status is CallStatus.INCONCLUSIVE
        assert outcome.reason == "completed"
        assert outcome.frames == 0

    def test_stalled_feed_times_out_inconclusive(self, sched):
        instr = Instrumentation.enabled()
        server = make_server(
            sched, instr, frame_timeout_s=2.0, session_deadline_s=300.0
        )

        async def main():
            admission = server.submit("tenant-a")
            # No frames, no finish(): the client just vanishes.
            return await admission.handle.result(), sched.now()

        outcome, now = run_guarded(sched, main())
        assert outcome.status is CallStatus.INCONCLUSIVE
        assert outcome.reason == "stall"
        assert now == pytest.approx(2.0)  # resolved at the stall timeout
        assert (
            instr.snapshot().counter_value(
                "service_session_end_total", reason="stall"
            )
            == 1
        )

    def test_session_deadline_caps_total_lifetime(self, sched):
        server = make_server(
            sched, frame_timeout_s=10.0, session_deadline_s=4.0
        )

        async def main():
            admission = server.submit("tenant-a")
            return await admission.handle.result(), sched.now()

        outcome, now = run_guarded(sched, main())
        assert outcome.reason == "deadline"
        assert outcome.status is CallStatus.INCONCLUSIVE
        assert now == pytest.approx(4.0)  # deadline < frame timeout wins

    def test_burst_overload_sheds_oldest_and_counts_drops(self, sched):
        instr = Instrumentation.enabled()
        server = make_server(
            sched, instr, frame_queue_depth=4, frame_proc_s=0.0
        )

        async def main():
            admission = server.submit("tenant-a")
            await sched.sleep(0.1)  # session parks on its empty queue
            for _ in range(10):  # dumped in one scheduling quantum
                admission.handle.push_frame(*gray_pair())
            admission.handle.finish()
            return await admission.handle.result()

        outcome = run_guarded(sched, main())
        # One frame was handed straight to the parked getter, four were
        # buffered, the rest were shed oldest-first.
        assert outcome.frames + outcome.dropped == 10
        assert outcome.dropped == 5
        snapshot = instr.snapshot()
        assert snapshot.counter_value("service_frames_dropped_total") == 5
        assert snapshot.counter_value("service_frames_processed_total") == outcome.frames

    def test_frame_processing_cost_is_modelled_in_virtual_time(self, sched):
        server = make_server(sched, frame_proc_s=0.5)

        async def main():
            admission = server.submit("tenant-a")
            for _ in range(4):
                admission.handle.push_frame(*gray_pair())
            admission.handle.finish()
            outcome = await admission.handle.result()
            return outcome, sched.now()

        outcome, now = run_guarded(sched, main())
        assert outcome.frames == 4
        assert now == pytest.approx(2.0)  # 4 frames x 0.5 s


class TestFailureContainment:
    def test_provider_failure_surfaces_at_join_and_frees_the_slot(self, sched):
        def exploding_provider(tenant_id):
            raise OSError("enrollment store down")

        instr = Instrumentation.enabled()
        server = VerificationServer(
            sched,
            exploding_provider,
            ServerConfig(max_sessions=1, admission_queue_depth=0),
            instrumentation=instr,
        )

        async def main():
            admission = server.submit("tenant-a")
            with pytest.raises(OSError, match="enrollment store down"):
                await admission.handle.result()
            # The failed session released its slot and its commitment:
            # the server keeps serving.
            retry = server.submit("tenant-a")
            with pytest.raises(OSError):
                await retry.handle.result()  # leave no dangling task
            return retry.admitted

        assert run_guarded(sched, main()) is True
        assert (
            instr.snapshot().counter_value(
                "service_task_failures_total", stage="tenant_fit"
            )
            == 2  # both the first session and the retry failed to fit
        )

    def test_small_bank_clamp_warns_through_the_service_path(self, sched):
        """An undersized tenant bank triggers the LOF clamp warning when
        the tenant's first session fits the model."""
        workload = WorkloadConfig(
            sessions=1, tenants=1, small_tenant_fraction=1.0, seed=3
        )
        server = VerificationServer(
            sched, make_tenant_bank_provider(workload), ServerConfig()
        )

        async def main():
            admission = server.submit("tenant-000")
            admission.handle.finish()
            return await admission.handle.result()

        with pytest.warns(SmallBankWarning):
            outcome = run_guarded(sched, main())
        assert outcome.status is CallStatus.INCONCLUSIVE


class TestConfigValidation:
    def test_rejects_nonsense_knobs(self):
        with pytest.raises(ValueError):
            ServerConfig(max_sessions=0)
        with pytest.raises(ValueError):
            ServerConfig(admission_queue_depth=-1)
        with pytest.raises(ValueError):
            ServerConfig(session_deadline_s=0.0)
        with pytest.raises(ValueError):
            ServerConfig(frame_timeout_s=-1.0)
