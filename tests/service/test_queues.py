"""FrameQueue: bounded, drop-oldest, never blocks the producer."""

import pytest

from repro.service import END_OF_STREAM, FrameQueue, TIMEOUT

from .conftest import run_guarded


class TestBackpressure:
    def test_drop_oldest_when_full(self, sched):
        queue = FrameQueue(sched, maxsize=3)
        for i in range(5):
            queue.put(i)
        assert len(queue) == 3
        assert queue.dropped == 2

        async def drain():
            return [await queue.get() for _ in range(3)]

        # The two oldest frames were shed; the freshest three survive.
        assert run_guarded(sched, drain()) == [2, 3, 4]

    def test_put_hands_straight_to_a_parked_getter(self, sched):
        queue = FrameQueue(sched, maxsize=1)

        async def consumer():
            return await queue.get(timeout=10.0)

        async def main():
            handle = sched.spawn(consumer(), name="consumer")
            await sched.sleep(0.1)  # let the consumer park
            queue.put("frame")
            assert len(queue) == 0  # bypassed the buffer entirely
            return await handle.join()

        assert run_guarded(sched, main()) == "frame"
        assert queue.dropped == 0

    def test_get_timeout_returns_sentinel(self, sched):
        queue = FrameQueue(sched, maxsize=1)

        async def main():
            result = await queue.get(timeout=1.5)
            return result, sched.now()

        result, now = run_guarded(sched, main())
        assert result is TIMEOUT
        assert now == 1.5  # reprolint: disable=R004

    def test_maxsize_validation(self, sched):
        with pytest.raises(ValueError):
            FrameQueue(sched, maxsize=0)


class TestEndOfStream:
    def test_close_delivers_eos_after_buffered_frames(self, sched):
        queue = FrameQueue(sched, maxsize=4)
        queue.put("a")
        queue.put("b")
        queue.close()

        async def drain():
            return [await queue.get() for _ in range(3)]

        assert run_guarded(sched, drain()) == ["a", "b", END_OF_STREAM]

    def test_eos_is_observable_forever(self, sched):
        queue = FrameQueue(sched, maxsize=2)
        queue.close()

        async def main():
            return [await queue.get() for _ in range(3)]

        assert run_guarded(sched, main()) == [END_OF_STREAM] * 3

    def test_close_wakes_a_parked_getter(self, sched):
        queue = FrameQueue(sched, maxsize=2)

        async def consumer():
            return await queue.get(timeout=10.0)

        async def main():
            handle = sched.spawn(consumer(), name="consumer")
            await sched.sleep(0.1)
            queue.close()
            return await handle.join()

        assert run_guarded(sched, main()) is END_OF_STREAM

    def test_close_is_idempotent_and_put_after_close_raises(self, sched):
        queue = FrameQueue(sched, maxsize=2)
        queue.close()
        queue.close()
        assert queue.closed
        with pytest.raises(RuntimeError, match="closed"):
            queue.put("late")
