"""Meta-test: every scheduler run in the test/bench trees is bounded.

A ``Scheduler.run`` without ``wall_guard_s`` turns any wedged task into
a hung pytest process — the failure mode that cannot fail loudly.  The
R015 fixtures in ``tests/analysis/test_async_rules.py`` are the spec
for what counts as guarded; this test enforces the same contract over
the real call sites in ``tests/service/`` and ``benchmarks/`` using the
very async summaries the linter runs on, so the spec and the audit
cannot drift apart.
"""

import ast
from pathlib import Path

from repro.analysis.context import ModuleContext
from repro.analysis.graph import summarize_module

REPO_ROOT = Path(__file__).resolve().parents[2]
AUDITED = ("tests/service", "benchmarks", "src/repro/service")


def audited_files():
    for rel in AUDITED:
        yield from sorted((REPO_ROOT / rel).rglob("*.py"))


def test_audited_trees_exist():
    files = list(audited_files())
    assert len(files) >= 10, files  # the audit has teeth


def test_every_scheduler_run_passes_wall_guard_s():
    unguarded = []
    for path in audited_files():
        rel = path.relative_to(REPO_ROOT).as_posix()
        summary = summarize_module(ModuleContext(rel, path.read_text()), rel)
        assert summary.error is None, f"{rel}: {summary.error}"
        for qual, fn in summary.functions.items():
            for run in fn.async_info.runs:
                if not run.has_guard:
                    unguarded.append(f"{rel}:{run.line} ({qual})")
    # The scheduler's own run() is the primitive being guarded, not a
    # call site of it; everything else must pass wall_guard_s.
    allowed = {u for u in unguarded if u.startswith("src/repro/service/scheduler.py")}
    assert sorted(set(unguarded) - allowed) == []


def test_every_run_workload_call_passes_wall_guard_s():
    """run_workload forwards the guard; each call site must decide it
    explicitly rather than silently inheriting an unbounded run."""
    missing = []
    for path in audited_files():
        rel = path.relative_to(REPO_ROOT).as_posix()
        tree = ast.parse(path.read_text(), filename=rel)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if name != "run_workload":
                continue
            if not any(kw.arg == "wall_guard_s" for kw in node.keywords):
                missing.append(f"{rel}:{node.lineno}")
    assert missing == []
