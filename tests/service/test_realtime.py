"""RealTimeScheduler: the wall-clock regime honors the same contract.

Delays are kept tiny (tens of milliseconds) — these are smoke tests of
the primitive mapping, not timing benchmarks.
"""

import pytest

from repro.service import (
    END_OF_STREAM,
    FrameQueue,
    RealTimeScheduler,
    ServiceLock,
    TIMEOUT,
)


@pytest.fixture
def sched():
    return RealTimeScheduler()


class TestRealTimePrimitives:
    def test_sleep_and_now_move_forward(self, sched):
        async def main():
            t0 = sched.now()
            await sched.sleep(0.02)
            return sched.now() - t0

        elapsed = sched.run(main(), wall_guard_s=5.0)
        assert elapsed >= 0.015

    def test_park_timeout_returns_sentinel(self, sched):
        async def main():
            waiter = sched.make_waiter()
            return await sched.park(waiter, timeout=0.02)

        assert sched.run(main(), wall_guard_s=5.0) is TIMEOUT

    def test_spawn_join_and_queue_handoff(self, sched):
        queue = None

        async def consumer():
            items = []
            while True:
                item = await queue.get(timeout=1.0)
                if item is END_OF_STREAM or item is TIMEOUT:
                    return items
                items.append(item)

        async def main():
            nonlocal queue
            queue = FrameQueue(sched, maxsize=4)
            handle = sched.spawn(consumer(), name="consumer")
            await sched.sleep(0.01)
            queue.put("a")
            queue.put("b")
            queue.close()
            return await handle.join()

        assert sched.run(main(), wall_guard_s=5.0) == ["a", "b"]

    def test_lock_is_exclusive(self, sched):
        order = []

        async def worker(lock, name):
            async with lock:
                order.append(("enter", name))
                await sched.sleep(0.01)
                order.append(("exit", name))

        async def main():
            lock = ServiceLock(sched)
            handles = [
                sched.spawn(worker(lock, "a"), name="a"),
                sched.spawn(worker(lock, "b"), name="b"),
            ]
            for handle in handles:
                await handle.join()

        sched.run(main(), wall_guard_s=5.0)
        assert order == [
            ("enter", "a"), ("exit", "a"), ("enter", "b"), ("exit", "b")
        ]

    def test_join_reraises(self, sched):
        async def worker():
            await sched.sleep(0.01)
            raise ValueError("real failure")

        async def main():
            handle = sched.spawn(worker(), name="worker")
            with pytest.raises(ValueError, match="real failure"):
                await handle.join()

        sched.run(main(), wall_guard_s=5.0)
