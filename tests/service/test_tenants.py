"""TenantBankCache: LRU residency, sharded single-fit, verifier reuse."""

import pytest

from repro.obs import Instrumentation
from repro.service import TenantBankCache

from .conftest import run_guarded, synthetic_bank


def counting_provider(calls: dict):
    def provider(tenant_id: str):
        calls[tenant_id] = calls.get(tenant_id, 0) + 1
        return synthetic_bank(tenant_id)

    return provider


class TestResidency:
    def test_miss_then_hit(self, sched):
        calls = {}
        instr = Instrumentation.enabled()
        cache = TenantBankCache(
            sched, counting_provider(calls), capacity=4, instrumentation=instr
        )

        async def main():
            v1 = await cache.acquire("tenant-a")
            cache.release("tenant-a", v1)
            v2 = await cache.acquire("tenant-a")
            cache.release("tenant-a", v2)
            return v1, v2

        v1, v2 = run_guarded(sched, main())
        assert calls == {"tenant-a": 1}  # one fit per residency
        assert v2 is v1  # the released verifier was recycled
        snapshot = instr.snapshot()
        assert snapshot.counter_value("service_tenant_cache_total", event="miss") == 1
        assert snapshot.counter_value("service_tenant_cache_total", event="hit") == 1

    def test_concurrent_sessions_of_one_tenant_fit_once(self, sched):
        calls = {}
        cache = TenantBankCache(sched, counting_provider(calls), capacity=4)

        async def session():
            verifier = await cache.acquire("tenant-a")
            await sched.sleep(1.0)
            cache.release("tenant-a", verifier)

        async def main():
            handles = [sched.spawn(session(), name=f"s{i}") for i in range(3)]
            for handle in handles:
                await handle.join()

        run_guarded(sched, main())
        assert calls == {"tenant-a": 1}

    def test_lru_eviction_at_capacity(self, sched):
        calls = {}
        instr = Instrumentation.enabled()
        cache = TenantBankCache(
            sched, counting_provider(calls), capacity=2, instrumentation=instr
        )

        async def main():
            for tid in ("tenant-a", "tenant-b", "tenant-c"):
                verifier = await cache.acquire(tid)
                cache.release(tid, verifier)
            return cache.resident_tenants

        resident = run_guarded(sched, main())
        assert resident == ("tenant-b", "tenant-c")  # a was least recent
        assert (
            instr.snapshot().counter_value(
                "service_tenant_cache_total", event="eviction"
            )
            == 1
        )

    def test_leased_tenants_survive_eviction(self, sched):
        cache = TenantBankCache(sched, counting_provider({}), capacity=1)

        async def main():
            held = await cache.acquire("tenant-a")  # never released
            other = await cache.acquire("tenant-b")  # would evict a, but
            cache.release("tenant-b", other)  # a is leased: overshoot
            resident = cache.resident_tenants
            cache.release("tenant-a", held)
            return resident

        resident = run_guarded(sched, main())
        assert "tenant-a" in resident and "tenant-b" in resident
        assert len(cache) == 2  # tolerated overshoot, no orphaned lease

    def test_release_after_eviction_drops_the_verifier(self, sched):
        cache = TenantBankCache(sched, counting_provider({}), capacity=1)

        async def main():
            v_a = await cache.acquire("tenant-a")
            cache.release("tenant-a", v_a)
            v_b = await cache.acquire("tenant-b")  # evicts idle tenant-a
            cache.release("tenant-b", v_b)
            # Late release of a verifier whose tenant is gone: dropped.
            cache.release("tenant-a", v_a)
            v_a2 = await cache.acquire("tenant-a")  # refit, fresh pool
            cache.release("tenant-a", v_a2)
            return v_a, v_a2

        v_a, v_a2 = run_guarded(sched, main())
        assert v_a2 is not v_a

    def test_capacity_validation(self, sched):
        with pytest.raises(ValueError):
            TenantBankCache(sched, counting_provider({}), capacity=0)
        with pytest.raises(ValueError):
            TenantBankCache(sched, counting_provider({}), capacity=1, shards=0)
