"""VirtualScheduler semantics: deterministic discrete-event time."""

import asyncio

import pytest

from repro.service import TIMEOUT, ServiceLock, VirtualScheduler
from repro.service.scheduler import _TIME_GRID

from .conftest import run_guarded


class TestVirtualTime:
    def test_sleep_advances_virtual_time_exactly(self, sched):
        async def main():
            await sched.sleep(5.0)
            return sched.now()

        assert run_guarded(sched, main()) == 5.0  # reprolint: disable=R004

    def test_events_fire_in_deadline_order(self, sched):
        order = []

        async def sleeper(name, delay):
            await sched.sleep(delay)
            order.append((name, sched.now()))

        async def main():
            handles = [
                sched.spawn(sleeper("c", 3.0), name="c"),
                sched.spawn(sleeper("a", 1.0), name="a"),
                sched.spawn(sleeper("b", 2.0), name="b"),
            ]
            for handle in handles:
                await handle.join()

        run_guarded(sched, main())
        assert order == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_deadline_ties_break_by_registration_order(self, sched):
        order = []

        async def sleeper(name):
            await sched.sleep(1.0)
            order.append(name)

        async def main():
            handles = [sched.spawn(sleeper(n), name=n) for n in "abcd"]
            for handle in handles:
                await handle.join()

        run_guarded(sched, main())
        assert order == list("abcd")

    def test_timestamps_stay_on_the_dyadic_grid(self, sched):
        """Every virtual instant is exact in binary floating point, so
        durations are translation-invariant — the bit-identity backbone."""

        async def main():
            for delay in (0.1, 0.0013, 3.3333, 0.0601):
                await sched.sleep(delay)
            return sched.now()

        now = run_guarded(sched, main())
        assert (now * _TIME_GRID).is_integer()

    def test_run_result_and_exception_propagation(self, sched):
        async def boom():
            await sched.sleep(1.0)
            raise ValueError("scripted failure")

        with pytest.raises(ValueError, match="scripted failure"):
            run_guarded(sched, boom())


class TestParkAndJoin:
    def test_park_timeout_returns_sentinel_and_advances_clock(self, sched):
        async def main():
            waiter = sched.make_waiter()
            result = await sched.park(waiter, timeout=2.5)
            return result, sched.now()

        result, now = run_guarded(sched, main())
        assert result is TIMEOUT
        assert now == 2.5  # reprolint: disable=R004

    def test_resolved_park_beats_its_timer(self, sched):
        async def main():
            waiter = sched.make_waiter()

            async def resolver():
                await sched.sleep(1.0)
                sched.resolve(waiter, "payload")

            sched.spawn(resolver(), name="resolver")
            result = await sched.park(waiter, timeout=100.0)
            return result, sched.now()

        result, now = run_guarded(sched, main())
        assert result == "payload"
        # The stale 100 s timer is lazily discarded.
        assert now == 1.0  # reprolint: disable=R004

    def test_join_returns_result(self, sched):
        async def worker():
            await sched.sleep(1.0)
            return 41 + 1

        async def main():
            handle = sched.spawn(worker(), name="worker")
            return await handle.join()

        assert run_guarded(sched, main()) == 42

    def test_join_reraises_task_error_nothing_unhandled(self, sched):
        """Spawned failures are captured and delivered at join() — the
        'zero unhandled task exceptions' guarantee."""

        async def worker():
            await sched.sleep(1.0)
            raise RuntimeError("worker died")

        async def main():
            handle = sched.spawn(worker(), name="worker")
            with pytest.raises(RuntimeError, match="worker died"):
                await handle.join()
            return handle.done

        assert run_guarded(sched, main()) is True

    def test_join_after_completion_is_immediate(self, sched):
        async def worker():
            return "done"

        async def main():
            handle = sched.spawn(worker(), name="worker")
            await sched.sleep(1.0)
            assert handle.done
            return await handle.join()

        assert run_guarded(sched, main()) == "done"

    def test_virtual_deadlock_is_detected_not_hung(self, sched):
        """A wait with no timeout and no resolver is a bug; the driver
        names it instead of spinning forever."""

        async def main():
            waiter = sched.make_waiter()
            await sched.park(waiter)  # nobody will ever resolve this

        with pytest.raises(RuntimeError, match="virtual-time deadlock"):
            run_guarded(sched, main())

    def test_wall_guard_surfaces_a_wedged_run(self, sched):
        """A task awaiting a future the scheduler cannot see stalls
        virtual time; the wall guard converts the hang into an error."""

        async def wedged():
            await asyncio.get_running_loop().create_future()

        with pytest.raises(asyncio.TimeoutError):
            sched.run(wedged(), wall_guard_s=0.2)


class TestServiceLock:
    def test_mutual_exclusion_and_fifo_handoff(self, sched):
        order = []
        lock = ServiceLock(sched)

        async def worker(name):
            async with lock:
                order.append(name)
                await sched.sleep(1.0)

        async def main():
            handles = [sched.spawn(worker(n), name=n) for n in "abc"]
            for handle in handles:
                await handle.join()
            return lock.locked

        assert run_guarded(sched, main()) is False
        assert order == list("abc")

    def test_release_unheld_lock_raises(self, sched):
        lock = ServiceLock(sched)
        with pytest.raises(RuntimeError, match="unheld"):
            lock.release()

    def test_handoff_never_marks_the_lock_free(self, sched):
        lock = ServiceLock(sched)
        observed = []

        async def second():
            async with lock:
                observed.append(lock.locked)

        async def main():
            await lock.acquire()
            handle = sched.spawn(second(), name="second")
            await sched.sleep(1.0)
            lock.release()  # handed directly to `second`
            await handle.join()

        run_guarded(sched, main())
        assert observed == [True]
