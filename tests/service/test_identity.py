"""Concurrent-vs-serial identity and graceful degradation under chaos.

The headline determinism property: under a :class:`VirtualScheduler`,
a session's outcome and every metric it records are a pure function of
its own script.  Running the whole workload open-loop (hundreds of
interleaved sessions) must therefore produce *byte-identical* outcomes
and merged metrics to feeding the same scripts one at a time.
"""

from repro.obs import Instrumentation
from repro.service import (
    ServerConfig,
    VerificationServer,
    VirtualScheduler,
    WorkloadConfig,
    build_slo_report,
    make_tenant_bank_provider,
    run_workload,
)

from .conftest import WALL_GUARD_S

#: Small but adversarial mix: attacks, chaos, abandoned feeds and frame
#: bursts, sized to finish in seconds under tier-1.
MIX = dict(
    sessions=12,
    tenants=3,
    arrival_rate_hz=4.0,
    attack_fraction=0.4,
    chaos_fraction=0.3,
    abandon_fraction=0.2,
    burst_fraction=0.2,
    seed=7,
)

#: Identity preconditions: capacity for every session (no admission
#: races) and residency for every tenant (no eviction races).
IDENTITY_SERVER = dict(max_sessions=64, admission_queue_depth=16)


def run_mix(serial: bool, **workload_overrides):
    workload = WorkloadConfig(**{**MIX, **workload_overrides})
    scheduler = VirtualScheduler()
    instr = Instrumentation.enabled(clock=scheduler.clock)
    server = VerificationServer(
        scheduler,
        make_tenant_bank_provider(workload),
        ServerConfig(**IDENTITY_SERVER),
        instrumentation=instr,
    )
    result = run_workload(
        scheduler, server, workload, serial=serial, wall_guard_s=WALL_GUARD_S
    )
    return result, instr.snapshot(), server


class TestIdentity:
    def test_open_loop_equals_serial_byte_for_byte(self):
        concurrent, concurrent_snap, server = run_mix(serial=False)
        serial, serial_snap, _ = run_mix(serial=True)

        assert server.peak_active > 1  # the pool actually interleaved
        assert concurrent.rejected == serial.rejected == 0
        assert concurrent.outcomes == serial.outcomes
        assert concurrent_snap == serial_snap  # merged metrics, bitwise

    def test_rerun_is_bit_reproducible(self):
        first, first_snap, _ = run_mix(serial=False)
        second, second_snap, _ = run_mix(serial=False)
        assert first.outcomes == second.outcomes
        assert first_snap == second_snap

    def test_verdicts_span_live_and_attacker(self):
        result, snapshot, _ = run_mix(serial=False)
        statuses = {outcome.status.value for outcome in result.outcomes}
        assert "live" in statuses
        assert "attacker" in statuses
        report = build_slo_report(snapshot)
        assert report.task_failures == 0
        assert report.sessions_finished == len(result.outcomes)


class TestDegradation:
    def test_every_chaotic_session_resolves_no_task_failures(self):
        """Chaos (loss bursts, dropouts, freezes, jitter, abandoned
        feeds) degrades verdicts to INCONCLUSIVE at worst — it never
        hangs a session or leaks a task exception."""
        result, snapshot, _ = run_mix(
            serial=False, chaos_fraction=1.0, chaos_severity=1.5
        )
        assert len(result.outcomes) + result.rejected == MIX["sessions"]
        report = build_slo_report(snapshot)
        assert report.task_failures == 0
        for outcome in result.outcomes:
            assert outcome.status.value in {
                "live", "attacker", "suspicious", "inconclusive"
            }

    def test_overload_rejects_rather_than_queueing_unboundedly(self):
        workload = WorkloadConfig(
            **{**MIX, "sessions": 10, "arrival_rate_hz": 50.0}
        )
        scheduler = VirtualScheduler()
        instr = Instrumentation.enabled(clock=scheduler.clock)
        server = VerificationServer(
            scheduler,
            make_tenant_bank_provider(workload),
            ServerConfig(max_sessions=2, admission_queue_depth=2),
            instrumentation=instr,
        )
        result = run_workload(
            scheduler, server, workload, wall_guard_s=WALL_GUARD_S
        )
        assert result.rejected > 0
        assert len(result.outcomes) + result.rejected == 10
        report = build_slo_report(
            instr.snapshot(), server.peak_active, server.peak_queued
        )
        assert report.rejected == result.rejected
        assert report.admitted == len(result.outcomes)
        assert 0.0 < report.admission_rate < 1.0
        assert server.peak_active <= 2
        assert server.peak_queued <= 2

    def test_identity_mix_finishes_inside_the_wall_guard(self):
        """The no-hang property, stated as wall time: an entire chaotic
        workload (virtual minutes of call time) resolves in real seconds."""
        workload = WorkloadConfig(**{**MIX, "sessions": 4, "chaos_fraction": 1.0})
        scheduler = VirtualScheduler()
        server = VerificationServer(
            scheduler,
            make_tenant_bank_provider(workload),
            ServerConfig(**IDENTITY_SERVER),
        )
        from repro.service.loadgen import _run_open_loop, build_scripts

        scripts = build_scripts(workload)
        result = scheduler.run(
            _run_open_loop(scheduler, server, scripts, workload),
            wall_guard_s=WALL_GUARD_S,
        )
        assert len(result.outcomes) == 4
