"""Tests of the multi-tenant async verification service."""
