"""Shared fixtures for the service-layer tests.

``run_guarded`` is the suite's no-hang safety net: every scheduler run
is bounded by an ``asyncio.wait_for`` wall guard, so a service bug that
wedges the event loop fails the test instead of hanging the session.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.service import VirtualScheduler

#: Generous wall-clock bound for virtual-time runs (they finish in
#: milliseconds unless something is wedged).
WALL_GUARD_S = 60.0


def run_guarded(scheduler, coro, wall_guard_s: float = WALL_GUARD_S):
    """Drive ``coro`` on ``scheduler``; fail (not hang) if it wedges."""
    return scheduler.run(coro, wall_guard_s=wall_guard_s)


def synthetic_bank(tenant_id: str, clips: int = 12) -> np.ndarray:
    """A deterministic ``(clips, 4)`` feature bank, cheap to fit.

    Seeded from ``crc32`` of the tenant id (the builtin ``hash`` is
    salted per process) so every test run sees the same banks.
    """
    rng = np.random.default_rng([zlib.crc32(tenant_id.encode()), 0x2BA7])
    base = np.array([0.85, 0.4, 0.9, 0.3])
    return base + rng.normal(0.0, 0.05, size=(clips, 4))


@pytest.fixture
def sched() -> VirtualScheduler:
    return VirtualScheduler()
